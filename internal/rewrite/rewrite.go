// Package rewrite is a proof-carrying network rewriter over the facts of
// internal/dataflow. It shrinks an automata network without changing its
// report stream: dead and unreachable states are deleted, redundant edges
// pruned, subsumed siblings folded into the states that cover them, and
// backward-bisimilar states — including redundant start states across
// NFAs — merged onto one STE, with the merged footprint guarded against
// the half-core capacity so static savings translate into fewer batches
// rather than unplaceable mega-components.
//
// Every transformation carries a certificate (see Cert) stated against
// the network the round consumed, and CheckCerts re-verifies the full
// list with local inductive conditions before anything is applied. The
// rewriter iterates plan→check→apply rounds to a fixed point, so the
// result is idempotent: rewriting a rewritten network is a no-op.
package rewrite

import (
	"fmt"
	"sort"

	"sparseap/internal/automata"
	"sparseap/internal/dataflow"
	"sparseap/internal/symset"
)

// DefaultCapacity bounds the size of a fused weakly-connected component
// produced by cross-NFA merging. It mirrors the default half-core STE
// capacity of internal/ap: a merged component larger than this could not
// be placed in one batch, which would cost more than the merge saves.
const DefaultCapacity = 3000

// maxSubsumeGroup caps the sibling-group size the quadratic subsumption
// scan will consider; larger groups are handled by bisimulation merging.
const maxSubsumeGroup = 512

// Options configures one rewrite.
type Options struct {
	// Alphabet restricts the assumed input alphabet; transformations are
	// then only report-preserving for inputs drawn from it. Empty means
	// the full 256-symbol alphabet (always sound).
	Alphabet symset.Set
	// Capacity demotes merges that would fuse a weakly-connected
	// component beyond this many states. 0 means DefaultCapacity;
	// negative means unguarded.
	Capacity int
	// NoMerge disables bisimulation merging (deletion and edge pruning
	// still run). Useful for isolating the per-NFA effects.
	NoMerge bool
}

func (o Options) alphabet() symset.Set {
	if o.Alphabet.IsEmpty() {
		return symset.All()
	}
	return o.Alphabet
}

func (o Options) capacity() int {
	if o.Capacity == 0 {
		return DefaultCapacity
	}
	return o.Capacity
}

// NFADelta is the size change of one original NFA. States and edges of
// the rewritten network are attributed to the NFA that owned the merged
// class representative (for edges: the source's representative).
type NFADelta struct {
	NFA          int
	StatesBefore int
	StatesAfter  int
	EdgesBefore  int
	EdgesAfter   int
}

// Stats aggregates what the rewrite did across all rounds.
type Stats struct {
	StatesBefore, StatesAfter int
	EdgesBefore, EdgesAfter   int
	NFAsBefore, NFAsAfter     int
	// Unreachable, Dead and Subsumed count deleted states by certificate
	// kind; Merged counts states folded onto a class representative, of
	// which StartsFolded were redundant start states.
	Unreachable, Dead, Subsumed, Merged, StartsFolded int
	// EdgesPruned counts redundant-edge deletions (duplicates and edges
	// into all-input start states).
	EdgesPruned int
	// DemotedClasses counts bisimulation classes whose merge the
	// capacity guard reverted.
	DemotedClasses int
	// Rounds is the number of plan/apply rounds until the fixed point.
	Rounds int
	// PerNFA has one entry per original NFA, in order.
	PerNFA []NFADelta
}

// StatesRemoved returns the total state reduction.
func (s Stats) StatesRemoved() int { return s.StatesBefore - s.StatesAfter }

// Round records one applied rewrite round: the network it consumed and
// the certificates justifying its transformations against that network.
type Round struct {
	Input *automata.Network
	Certs []Cert
}

// Result is a completed rewrite.
type Result struct {
	// Net is the rewritten network. When no transformation applied it is
	// the input network itself.
	Net *automata.Network
	// OrigOf maps each rewritten state to the original state that became
	// its representative.
	OrigOf []automata.StateID
	// NewID maps each original state to its rewritten ID: deleted states
	// map to automata.None, merged states to their representative's ID.
	NewID []automata.StateID
	// Rounds holds the per-round certificates; Rounds[0].Input is the
	// original network. Empty when nothing applied.
	Rounds []Round
	Stats  Stats
}

// Changed reports whether the rewrite transformed the network at all.
func (r *Result) Changed() bool { return len(r.Rounds) > 0 }

// Check re-verifies every round's certificate list against that round's
// input network. It is exported so callers can audit a Result they did
// not produce; Rewrite already runs it before applying each round.
func (r *Result) Check(alphabet symset.Set) error {
	for i, rd := range r.Rounds {
		if err := CheckCerts(rd.Input, rd.Certs, alphabet); err != nil {
			return fmt.Errorf("round %d: %w", i+1, err)
		}
	}
	return nil
}

// Rewrite shrinks the network to a fixed point under the given options.
// The input network is not modified. It returns an error if the network
// is structurally unsound (beyond missing start states, which are
// semantically just unreachable regions) or if a round's certificates
// fail verification — the proof-carrying contract means an unsound plan
// is rejected rather than applied.
func Rewrite(net *automata.Network, opts Options) (*Result, error) {
	for _, p := range net.StructuralProblems() {
		switch p.Kind {
		case automata.ProblemNoStart, automata.ProblemEmpty:
			// Tolerated: no-start NFAs are provably unreachable and get
			// deleted; empty networks pass through unchanged.
		default:
			return nil, fmt.Errorf("rewrite: network is structurally unsound: %s", p.Msg)
		}
	}
	res := &Result{Net: net}
	res.Stats.StatesBefore = net.Len()
	res.Stats.EdgesBefore = countEdges(net)
	res.Stats.NFAsBefore = net.NumNFAs()

	origOf := identity(net.Len())
	newID := identity(net.Len())
	cur := net
	// Each applied round strictly reduces states+edges, except at most
	// one round that only normalizes match sets under a restricted
	// alphabet — intersection is idempotent, so the round after it sees
	// no match change. The loop therefore terminates; the cap is a
	// safety net only.
	for round := 0; round < 1+net.Len()+countEdges(net); round++ {
		p := planRewrite(cur, opts)
		// The demoted count reflects the fixed point: classes that stay
		// claimed-but-unapplied because merging them would fuse an
		// oversized component. Every plan sees them again, so assign
		// rather than accumulate.
		res.Stats.DemotedClasses = p.demoted
		if p.empty() {
			break
		}
		if err := CheckCerts(cur, p.certs, opts.alphabet()); err != nil {
			return nil, fmt.Errorf("rewrite: round %d plan failed verification: %w", round+1, err)
		}
		next, roundOrig, roundNew := p.apply()
		res.Rounds = append(res.Rounds, Round{Input: cur, Certs: p.certs})
		p.tally(&res.Stats)
		// Compose the original↔rewritten maps through this round.
		composed := make([]automata.StateID, len(roundOrig))
		for i, prev := range roundOrig {
			composed[i] = origOf[prev]
		}
		origOf = composed
		for o := range newID {
			if newID[o] != automata.None {
				newID[o] = roundNew[newID[o]]
			}
		}
		cur = next
	}
	res.OrigOf = origOf
	res.Net = cur
	res.NewID = newID
	res.Stats.StatesAfter = cur.Len()
	res.Stats.EdgesAfter = countEdges(cur)
	res.Stats.NFAsAfter = cur.NumNFAs()
	res.Stats.Rounds = len(res.Rounds)
	res.Stats.PerNFA = perNFADeltas(net, res)
	return res, nil
}

func identity(n int) []automata.StateID {
	ids := make([]automata.StateID, n)
	for i := range ids {
		ids[i] = automata.StateID(i)
	}
	return ids
}

func countEdges(net *automata.Network) int {
	e := 0
	for i := range net.States {
		e += len(net.States[i].Succ)
	}
	return e
}

// perNFADeltas attributes the rewritten network's states and edges back
// to original NFA indices via the composed OrigOf map.
func perNFADeltas(orig *automata.Network, res *Result) []NFADelta {
	out := make([]NFADelta, orig.NumNFAs())
	for i := range out {
		out[i].NFA = i
		lo, hi := orig.NFAStates(i)
		out[i].StatesBefore = int(hi - lo)
		for s := lo; s < hi; s++ {
			out[i].EdgesBefore += len(orig.States[s].Succ)
		}
	}
	for k := range res.Net.States {
		nfa := orig.NFAOf[res.OrigOf[k]]
		out[nfa].StatesAfter++
		out[nfa].EdgesAfter += len(res.Net.States[k].Succ)
	}
	return out
}

// plan is one round's set of justified transformations against one
// network. All decisions are stated in that network's IDs so the
// certificate list is checkable against it alone.
type plan struct {
	net   *automata.Network
	opts  Options
	facts *dataflow.Facts

	removed    []bool               // unreachable ∪ dead ∪ subsumed
	removeKind []CertKind           // valid where removed
	mergeTo    []automata.StateID   // kept → class representative (self if unmerged)
	applied    [][]automata.StateID // merged classes: kept members, ascending; [0] is the representative
	demoted    int                  // classes reverted by the capacity guard
	certs      []Cert

	prunedEdges  int
	matchChanged bool
	startsFolded int
}

func (p *plan) empty() bool {
	for _, r := range p.removed {
		if r {
			return false
		}
	}
	return len(p.applied) == 0 && p.prunedEdges == 0 && !p.matchChanged
}

// tally folds this round's counters into the aggregate stats.
func (p *plan) tally(st *Stats) {
	for s, r := range p.removed {
		if !r {
			continue
		}
		switch p.removeKind[s] {
		case CertUnreachable:
			st.Unreachable++
		case CertDead:
			st.Dead++
		case CertSubsumed:
			st.Subsumed++
		}
	}
	for _, cl := range p.applied {
		st.Merged += len(cl) - 1
	}
	st.StartsFolded += p.startsFolded
	st.EdgesPruned += p.prunedEdges
}

// planRewrite derives one round of transformations: dataflow-driven
// deletions, subsumption, redundant-edge pruning, and capacity-guarded
// bisimulation merging, each emitting its certificate.
func planRewrite(net *automata.Network, opts Options) *plan {
	p := &plan{
		net:        net,
		opts:       opts,
		facts:      dataflow.Analyze(net, opts.Alphabet),
		removed:    make([]bool, net.Len()),
		removeKind: make([]CertKind, net.Len()),
	}
	alpha := opts.alphabet()

	// Phase 1: dataflow deletions. Unreachable states never fire; dead
	// states fire but cannot contribute to a report (and are never
	// reporting, since a firing reporting state is live by definition).
	for s := 0; s < net.Len(); s++ {
		id := automata.StateID(s)
		switch {
		case p.facts.Unreachable(id):
			p.remove(id, CertUnreachable, automata.None)
		case p.facts.Dead(id):
			p.remove(id, CertDead, automata.None)
		}
	}

	// Phase 2: subsumption among the survivors.
	p.planSubsumption()

	// Phase 3: redundant edges among kept states — duplicates beyond the
	// first listing, and edges into all-input start states (those targets
	// are enabled every cycle regardless; the edge is a no-op).
	seen := make(map[automata.StateID]int)
	for u := 0; u < net.Len(); u++ {
		if p.removed[u] {
			continue
		}
		clear(seen)
		for _, v := range net.States[u].Succ {
			if p.removed[v] {
				continue // vanishes with its endpoint; needs no certificate
			}
			if net.States[v].Start == automata.StartAllInput {
				p.certs = append(p.certs, Cert{Kind: CertRedundantEdge, State: automata.None, From: automata.StateID(u), To: v})
				p.prunedEdges++
				continue
			}
			if seen[v]++; seen[v] > 1 {
				p.certs = append(p.certs, Cert{Kind: CertRedundantEdge, State: automata.None, From: automata.StateID(u), To: v})
				p.prunedEdges++
			}
		}
	}

	// Phase 4: bisimulation merging.
	p.mergeTo = identity(net.Len())
	if !opts.NoMerge {
		p.planMerge()
	}

	// Match normalization under a restricted alphabet is itself a
	// transformation; detect it so the fixed-point loop knows this round
	// changes the network even without deletions.
	if !alpha.Equal(symset.All()) {
		for s := 0; s < net.Len(); s++ {
			if !p.removed[s] && !net.States[s].Match.Intersect(alpha).Equal(net.States[s].Match) {
				p.matchChanged = true
				break
			}
		}
	}
	return p
}

func (p *plan) remove(s automata.StateID, kind CertKind, into automata.StateID) {
	p.removed[s] = true
	p.removeKind[s] = kind
	p.certs = append(p.certs, Cert{Kind: kind, State: s, Into: into})
}

// planSubsumption deletes kept states covered by a sibling: same
// predecessors (up to self-loops), match and successors contained in the
// sibling's under the u↦v substitution, start kind covered, and not
// reporting. Siblings are found by grouping on the exact predecessor set
// (excluding self), which makes the containment conditions local to
// small groups.
func (p *plan) planSubsumption() {
	net := p.net
	preds := net.Preds()
	alpha := p.opts.alphabet()

	type member struct {
		id       automata.StateID
		succ     []automata.StateID // sorted, deduped
		selfPred bool
		selfSucc bool
	}
	groups := make(map[string][]member)
	keyBuf := make([]byte, 0, 64)
	order := make([]string, 0, 64)
	for s := 0; s < net.Len(); s++ {
		if p.removed[s] {
			continue
		}
		id := automata.StateID(s)
		m := member{id: id}
		ps := append([]automata.StateID(nil), preds[s]...)
		sort.Slice(ps, func(a, b int) bool { return ps[a] < ps[b] })
		keyBuf = keyBuf[:0]
		last := automata.None
		for _, q := range ps {
			if q == id {
				m.selfPred = true
				continue
			}
			if q == last {
				continue
			}
			last = q
			keyBuf = append(keyBuf, byte(q), byte(q>>8), byte(q>>16), byte(q>>24))
		}
		for _, v := range net.States[s].Succ {
			if v == id {
				m.selfSucc = true
			}
			m.succ = append(m.succ, v)
		}
		sort.Slice(m.succ, func(a, b int) bool { return m.succ[a] < m.succ[b] })
		k := string(keyBuf)
		if _, ok := groups[k]; !ok {
			order = append(order, k)
		}
		groups[k] = append(groups[k], m)
	}

	contains := func(sorted []automata.StateID, x automata.StateID) bool {
		i := sort.Search(len(sorted), func(i int) bool { return sorted[i] >= x })
		return i < len(sorted) && sorted[i] == x
	}
	pinned := make(map[automata.StateID]bool) // used as a subsumer; must survive
	for _, k := range order {
		g := groups[k]
		if len(g) < 2 || len(g) > maxSubsumeGroup {
			continue
		}
		for i := range g {
			u := &g[i]
			su := &net.States[u.id]
			if su.Report || p.removed[u.id] || pinned[u.id] {
				continue
			}
			mu := su.Match.Intersect(alpha)
			for j := range g {
				v := &g[j]
				if i == j || p.removed[v.id] {
					continue
				}
				sv := &net.States[v.id]
				if su.Start != automata.StartNone && su.Start != sv.Start {
					continue
				}
				if !mu.Intersect(sv.Match).Equal(mu) {
					continue
				}
				// Self-references compare under the substitution u↦v.
				if u.selfPred && !v.selfPred {
					continue
				}
				ok := true
				for _, x := range u.succ {
					if x == u.id {
						x = v.id
					}
					if !contains(v.succ, x) && !(x == v.id && v.selfSucc) {
						ok = false
						break
					}
				}
				if !ok {
					continue
				}
				p.remove(u.id, CertSubsumed, v.id)
				pinned[v.id] = true
				break
			}
		}
	}
}

// planMerge partitions the network by backward bisimulation — the
// refinement of automata.MergeEquivalent with three generalizations:
// matches compare under the alphabet, predecessors that provably never
// fire are ignored (they cannot affect enabling), and all-input start
// states are exempt from the predecessor condition entirely (they are
// enabled every cycle, which is what lets redundant start states fold
// across NFAs). Every multi-member class of the stable partition is
// emitted as a certificate; classes with ≥2 kept members become merges
// unless the capacity guard demotes them.
func (p *plan) planMerge() {
	net := p.net
	preds := net.Preds()
	alpha := p.opts.alphabet()
	n := net.Len()
	if n == 0 {
		return
	}

	group := make([]int32, n)
	type initKey struct {
		match  symset.Set
		start  automata.StartKind
		unique int32 // state ID for reporting states, -1 otherwise
	}
	index := make(map[initKey]int32)
	var nGroups int32
	for s := 0; s < n; s++ {
		st := &net.States[s]
		k := initKey{match: st.Match.Intersect(alpha), start: st.Start, unique: -1}
		if st.Report {
			k.unique = int32(s)
		}
		g, ok := index[k]
		if !ok {
			g = nGroups
			nGroups++
			index[k] = g
		}
		group[s] = g
	}
	for {
		type refineKey struct {
			old   int32
			preds string
		}
		next := make(map[refineKey]int32)
		newGroup := make([]int32, n)
		var n2 int32
		buf := make([]int32, 0, 8)
		for s := 0; s < n; s++ {
			rk := refineKey{old: group[s]}
			if net.States[s].Start != automata.StartAllInput {
				buf = buf[:0]
				for _, q := range preds[s] {
					if p.facts.Unreachable(q) {
						continue // never fires; cannot affect enabling
					}
					buf = append(buf, group[q])
				}
				sort.Slice(buf, func(a, b int) bool { return buf[a] < buf[b] })
				key := make([]byte, 0, 4*len(buf))
				var last int32 = -1
				for _, g := range buf {
					if g == last {
						continue // sets, not multisets
					}
					last = g
					key = append(key, byte(g), byte(g>>8), byte(g>>16), byte(g>>24))
				}
				rk.preds = string(key)
			}
			g, ok := next[rk]
			if !ok {
				g = n2
				n2++
				next[rk] = g
			}
			newGroup[s] = g
		}
		if n2 == nGroups {
			break
		}
		group = newGroup
		nGroups = n2
	}

	// Emit the full partition's multi-member classes as certificates —
	// the checker needs every non-singleton class to verify stability,
	// including classes of deleted states and classes the guard demotes.
	members := make([][]automata.StateID, nGroups)
	for s := 0; s < n; s++ {
		members[group[s]] = append(members[group[s]], automata.StateID(s))
	}
	var candidates [][]automata.StateID // kept members, ≥2, ascending
	for s := 0; s < n; s++ {            // first-member order, deterministic
		g := group[s]
		if members[g] == nil || members[g][0] != automata.StateID(s) || len(members[g]) < 2 {
			continue
		}
		p.certs = append(p.certs, Cert{Kind: CertBisimClass, State: automata.None, Class: members[g]})
		kept := make([]automata.StateID, 0, len(members[g]))
		for _, m := range members[g] {
			if !p.removed[m] {
				kept = append(kept, m)
			}
		}
		if len(kept) >= 2 {
			candidates = append(candidates, kept)
		}
	}
	p.applyGuard(candidates)
}

// applyGuard applies merge candidates subject to the capacity guard:
// a class whose kept members span multiple weakly-connected components
// is demoted when the component it would fuse exceeds the capacity,
// iterating until the surviving merges fuse nothing oversized. Classes
// internal to one component never change component sizes and are always
// applied.
func (p *plan) applyGuard(candidates [][]automata.StateID) {
	net := p.net
	limit := p.opts.capacity()

	// Weak components of the kept, pre-merge network (pruned edges
	// excluded — they will not exist in the output).
	origComp := p.weakComponents(func(s automata.StateID) automata.StateID { return s })
	fusing := make([]bool, len(candidates))
	for i, cl := range candidates {
		first := origComp[cl[0]]
		for _, m := range cl[1:] {
			if origComp[m] != first {
				fusing[i] = true
				break
			}
		}
	}

	active := make([]bool, len(candidates))
	for i := range active {
		active[i] = true
	}
	rep := make([]automata.StateID, net.Len())
	for {
		for i := range rep {
			rep[i] = automata.StateID(i)
		}
		for i, cl := range candidates {
			if !active[i] {
				continue
			}
			for _, m := range cl[1:] {
				rep[m] = cl[0]
			}
		}
		if limit < 0 {
			break
		}
		comp := p.weakComponents(func(s automata.StateID) automata.StateID { return rep[s] })
		size := make(map[automata.StateID]int)
		for s := 0; s < net.Len(); s++ {
			if !p.removed[s] && rep[s] == automata.StateID(s) {
				size[comp[s]]++
			}
		}
		changed := false
		for i, cl := range candidates {
			if active[i] && fusing[i] && size[comp[cl[0]]] > limit {
				active[i] = false
				p.demoted++
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	for i, cl := range candidates {
		if !active[i] {
			continue
		}
		p.applied = append(p.applied, cl)
		for _, m := range cl[1:] {
			p.mergeTo[m] = cl[0]
			if net.States[m].Start != automata.StartNone {
				p.startsFolded++
			}
		}
	}
}

// weakComponents computes weakly-connected components over kept states
// under the final edge rule (pruned all-input-target edges excluded),
// with states identified through the given representative map. The
// returned slice maps each kept state to its component root.
func (p *plan) weakComponents(rep func(automata.StateID) automata.StateID) []automata.StateID {
	net := p.net
	parent := make([]automata.StateID, net.Len())
	for i := range parent {
		parent[i] = automata.StateID(i)
	}
	var find func(automata.StateID) automata.StateID
	find = func(x automata.StateID) automata.StateID {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b automata.StateID) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[rb] = ra
		}
	}
	for u := 0; u < net.Len(); u++ {
		if p.removed[u] {
			continue
		}
		for _, v := range net.States[u].Succ {
			if p.removed[v] || net.States[v].Start == automata.StartAllInput {
				continue
			}
			union(rep(automata.StateID(u)), rep(v))
		}
	}
	// Merged classes are one placement unit even without an edge.
	out := make([]automata.StateID, net.Len())
	for s := 0; s < net.Len(); s++ {
		if !p.removed[s] {
			union(rep(automata.StateID(s)), automata.StateID(s))
		}
	}
	for s := 0; s < net.Len(); s++ {
		out[s] = find(automata.StateID(s))
	}
	return out
}

// apply materializes the plan into a fresh network. Kept representatives
// are grouped into NFAs by weak connectivity, NFAs ordered by their
// smallest original state ID, states ascending within each NFA, edges
// deduplicated and sorted — the rebuild is fully deterministic, which is
// what makes the fixed point (and aplint -fix idempotence) testable.
func (p *plan) apply() (*automata.Network, []automata.StateID, []automata.StateID) {
	net := p.net
	alpha := p.opts.alphabet()
	comp := p.weakComponents(func(s automata.StateID) automata.StateID { return p.mergeTo[s] })

	emitted := func(s automata.StateID) bool {
		return !p.removed[s] && p.mergeTo[s] == s
	}
	// Assign NFA indices by first-seen component, scanning ascending.
	nfaOfComp := make(map[automata.StateID]int)
	var nfaStates [][]automata.StateID
	for s := 0; s < net.Len(); s++ {
		id := automata.StateID(s)
		if !emitted(id) {
			continue
		}
		c := comp[id]
		i, ok := nfaOfComp[c]
		if !ok {
			i = len(nfaStates)
			nfaOfComp[c] = i
			nfaStates = append(nfaStates, nil)
		}
		nfaStates[i] = append(nfaStates[i], id)
	}

	out := &automata.Network{Offsets: []automata.StateID{0}}
	newID := make([]automata.StateID, net.Len())
	for i := range newID {
		newID[i] = automata.None
	}
	var origOf []automata.StateID
	for i, states := range nfaStates {
		for _, s := range states {
			newID[s] = automata.StateID(len(out.States))
			st := net.States[s]
			st.Match = st.Match.Intersect(alpha)
			st.Succ = nil
			out.States = append(out.States, st)
			out.NFAOf = append(out.NFAOf, int32(i))
			origOf = append(origOf, s)
		}
		out.Offsets = append(out.Offsets, automata.StateID(len(out.States)))
	}
	// Edges: union the members' successors onto each representative,
	// skipping deleted endpoints and pruned all-input targets.
	edgeSets := make([]map[automata.StateID]struct{}, len(out.States))
	for u := 0; u < net.Len(); u++ {
		if p.removed[u] {
			continue
		}
		src := newID[p.mergeTo[u]]
		for _, v := range net.States[u].Succ {
			if p.removed[v] || net.States[v].Start == automata.StartAllInput {
				continue
			}
			dst := newID[p.mergeTo[v]]
			if edgeSets[src] == nil {
				edgeSets[src] = make(map[automata.StateID]struct{})
			}
			edgeSets[src][dst] = struct{}{}
		}
	}
	for k, set := range edgeSets {
		if len(set) == 0 {
			continue
		}
		succ := make([]automata.StateID, 0, len(set))
		for v := range set {
			succ = append(succ, v)
		}
		sort.Slice(succ, func(a, b int) bool { return succ[a] < succ[b] })
		out.States[k].Succ = succ
	}
	// Full original→new map: deleted → None, merged → representative.
	full := make([]automata.StateID, net.Len())
	for s := 0; s < net.Len(); s++ {
		if p.removed[s] {
			full[s] = automata.None
		} else {
			full[s] = newID[p.mergeTo[s]]
		}
	}
	return out, origOf, full
}
