package rewrite

import (
	"fmt"
	"sort"

	"sparseap/internal/automata"
	"sparseap/internal/symset"
)

// CertKind classifies one proof-carrying rewrite justification.
type CertKind uint8

const (
	// CertUnreachable justifies deleting a state that can never fire:
	// its match set misses the alphabet, or it is not a start state and
	// every predecessor is itself certified never-firing. The condition
	// is inductive over cycles, so the certified set is checkable in one
	// pass without re-running the dataflow analysis.
	CertUnreachable CertKind = iota
	// CertDead justifies deleting a state whose firing can never
	// contribute to a report: it does not report, and every successor is
	// certified dead or never-firing.
	CertDead
	// CertRedundantEdge justifies deleting one edge: its target is an
	// all-input start state (enabled every cycle regardless of the
	// edge), or the edge is a duplicate listing of an edge that is kept.
	CertRedundantEdge
	// CertSubsumed justifies deleting a non-reporting state u whose
	// behaviour a sibling v covers: whenever u fires, v fires too, and
	// everything u would enable, v enables.
	CertSubsumed
	// CertBisimClass asserts one equivalence class of a backward
	// bisimulation: all members are activated on exactly the same cycles
	// of every input, so one STE can stand for the whole class. The
	// checker verifies the stability of the full claimed partition.
	CertBisimClass
)

// String names the certificate kind.
func (k CertKind) String() string {
	switch k {
	case CertUnreachable:
		return "unreachable"
	case CertDead:
		return "dead"
	case CertRedundantEdge:
		return "redundant-edge"
	case CertSubsumed:
		return "subsumed"
	case CertBisimClass:
		return "bisim-class"
	}
	return fmt.Sprintf("CertKind(%d)", uint8(k))
}

// Cert is one machine-checkable justification, stated in the state IDs of
// the network the rewrite round consumed. CheckCerts re-verifies a round's
// certificate list against that network independently of the analyses
// that produced it.
type Cert struct {
	Kind CertKind
	// State is the deleted state (CertUnreachable, CertDead,
	// CertSubsumed); automata.None otherwise.
	State automata.StateID
	// Into is the covering sibling of a CertSubsumed deletion.
	Into automata.StateID
	// From/To identify the deleted edge of a CertRedundantEdge.
	From, To automata.StateID
	// Class lists the members of a CertBisimClass in ascending order.
	Class []automata.StateID
}

// String renders the certificate compactly.
func (c Cert) String() string {
	switch c.Kind {
	case CertRedundantEdge:
		return fmt.Sprintf("%s %d->%d", c.Kind, c.From, c.To)
	case CertSubsumed:
		return fmt.Sprintf("%s %d into %d", c.Kind, c.State, c.Into)
	case CertBisimClass:
		return fmt.Sprintf("%s %v", c.Kind, c.Class)
	}
	return fmt.Sprintf("%s %d", c.Kind, c.State)
}

// CheckCerts verifies every certificate in the list against the network
// it was issued for, under the given alphabet (empty = full). It is the
// independent half of the proof-carrying contract: the planner derives
// facts by fixpoint iteration, the checker re-verifies each claim with
// one local, inductive condition per certificate. An error means the
// certificate list does not justify the transformation.
func CheckCerts(net *automata.Network, certs []Cert, alphabet symset.Set) error {
	if alphabet.IsEmpty() {
		alphabet = symset.All()
	}
	n := net.Len()
	inRange := func(s automata.StateID) bool { return s >= 0 && int(s) < n }

	// Collect the deleted-state sets; membership feeds the inductive
	// conditions below.
	unreach := make(map[automata.StateID]bool)
	dead := make(map[automata.StateID]bool)
	removed := make(map[automata.StateID]bool) // unreach ∪ dead ∪ subsumed
	for _, c := range certs {
		switch c.Kind {
		case CertUnreachable, CertDead, CertSubsumed:
			if !inRange(c.State) {
				return fmt.Errorf("rewrite: cert %s: state out of range", c)
			}
			if removed[c.State] {
				return fmt.Errorf("rewrite: cert %s: state deleted twice", c)
			}
			removed[c.State] = true
			if c.Kind == CertUnreachable {
				unreach[c.State] = true
			}
			if c.Kind == CertDead {
				dead[c.State] = true
			}
		}
	}

	preds := net.Preds()
	dupBudget := make(map[[2]automata.StateID]int)
	classOf := make(map[automata.StateID]int) // state -> cert index of its class

	for i, c := range certs {
		switch c.Kind {
		case CertUnreachable:
			// Inductive never-fire condition: by induction over input
			// positions, no state satisfying it ever fires.
			st := &net.States[c.State]
			if st.Match.Intersect(alphabet).IsEmpty() {
				continue
			}
			if st.Start != automata.StartNone {
				return fmt.Errorf("rewrite: cert %s: start state with non-empty match", c)
			}
			for _, p := range preds[c.State] {
				if !unreach[p] {
					return fmt.Errorf("rewrite: cert %s: predecessor %d is not certified unreachable", c, p)
				}
			}

		case CertDead:
			// Inductive never-contributes condition: the state does not
			// report and can only enable states that are themselves
			// certified dead or never-firing.
			st := &net.States[c.State]
			if st.Report {
				return fmt.Errorf("rewrite: cert %s: reporting state", c)
			}
			for _, v := range st.Succ {
				if !dead[v] && !unreach[v] {
					return fmt.Errorf("rewrite: cert %s: successor %d is not certified dead or unreachable", c, v)
				}
			}

		case CertRedundantEdge:
			if !inRange(c.From) || !inRange(c.To) {
				return fmt.Errorf("rewrite: cert %s: endpoint out of range", c)
			}
			occ := 0
			for _, v := range net.States[c.From].Succ {
				if v == c.To {
					occ++
				}
			}
			if occ == 0 {
				return fmt.Errorf("rewrite: cert %s: edge does not exist", c)
			}
			if net.States[c.To].Start == automata.StartAllInput {
				continue // target enabled every cycle; the edge is a no-op
			}
			// Duplicate listing: at most occ-1 copies may be certified.
			e := [2]automata.StateID{c.From, c.To}
			dupBudget[e]++
			if dupBudget[e] > occ-1 {
				return fmt.Errorf("rewrite: cert %s: more duplicate-edge deletions than spare listings (%d of %d)", c, dupBudget[e], occ)
			}

		case CertSubsumed:
			if err := checkSubsumed(net, alphabet, c, removed); err != nil {
				return err
			}

		case CertBisimClass:
			if len(c.Class) < 2 {
				return fmt.Errorf("rewrite: cert %s: class needs at least two members", c)
			}
			for _, s := range c.Class {
				if !inRange(s) {
					return fmt.Errorf("rewrite: cert %s: member out of range", c)
				}
				if _, dup := classOf[s]; dup {
					return fmt.Errorf("rewrite: cert %s: state %d appears in two classes", c, s)
				}
				classOf[s] = i
			}

		default:
			return fmt.Errorf("rewrite: unknown certificate kind %d", c.Kind)
		}
	}

	// Verify the claimed bisimulation partition is stable. States not
	// listed in any class are singletons; the check below is exactly the
	// stability condition of backward bisimulation — members of one class
	// agree on observation (match under the alphabet, start kind,
	// non-reporting) and on the set of predecessor classes, so they are
	// enabled, and therefore activated, on identical cycles. All-input
	// members are exempt from the predecessor condition: they are enabled
	// every cycle no matter what flows in.
	classID := func(s automata.StateID) int {
		if i, ok := classOf[s]; ok {
			return i
		}
		return len(certs) + int(s) // unique singleton id
	}
	predClasses := func(s automata.StateID) []int {
		set := make(map[int]struct{})
		for _, p := range preds[s] {
			if unreach[p] {
				continue // certified never-firing; cannot affect enabling
			}
			set[classID(p)] = struct{}{}
		}
		out := make([]int, 0, len(set))
		for c := range set {
			out = append(out, c)
		}
		sort.Ints(out)
		return out
	}
	for _, c := range certs {
		if c.Kind != CertBisimClass {
			continue
		}
		first := c.Class[0]
		f := &net.States[first]
		fMatch := f.Match.Intersect(alphabet)
		var fPreds []int
		if f.Start != automata.StartAllInput {
			fPreds = predClasses(first)
		}
		for _, s := range c.Class {
			st := &net.States[s]
			if st.Report {
				return fmt.Errorf("rewrite: cert %s: member %d reports; reporting states keep their identity", c, s)
			}
			if !st.Match.Intersect(alphabet).Equal(fMatch) {
				return fmt.Errorf("rewrite: cert %s: member %d match %s differs from %s", c, s, st.Match, f.Match)
			}
			if st.Start != f.Start {
				return fmt.Errorf("rewrite: cert %s: member %d start kind %s differs from %s", c, s, st.Start, f.Start)
			}
			if f.Start == automata.StartAllInput {
				continue
			}
			got := predClasses(s)
			if !equalInts(got, fPreds) {
				return fmt.Errorf("rewrite: cert %s: member %d predecessor classes %v differ from %v (partition not stable)", c, s, got, fPreds)
			}
		}
	}
	return nil
}

// checkSubsumed verifies one subsumption certificate: deleting u is safe
// because sibling v fires whenever u would, and enables everything u
// would. Self-references are compared under the substitution u ↦ v, which
// makes the condition inductive over input positions even through
// self-loops.
func checkSubsumed(net *automata.Network, alphabet symset.Set, c Cert, removed map[automata.StateID]bool) error {
	u, v := c.State, c.Into
	if v < 0 || int(v) >= net.Len() || u == v {
		return fmt.Errorf("rewrite: cert %s: bad subsumer", c)
	}
	if removed[v] {
		return fmt.Errorf("rewrite: cert %s: subsumer %d is itself deleted", c, v)
	}
	su, sv := &net.States[u], &net.States[v]
	if su.Report {
		return fmt.Errorf("rewrite: cert %s: reporting state", c)
	}
	if su.Start != automata.StartNone && su.Start != sv.Start {
		return fmt.Errorf("rewrite: cert %s: start kind %s not covered by %s", c, su.Start, sv.Start)
	}
	mu := su.Match.Intersect(alphabet)
	if !mu.Intersect(sv.Match).Equal(mu) {
		return fmt.Errorf("rewrite: cert %s: match %s not contained in %s", c, su.Match, sv.Match)
	}
	preds := net.Preds()
	if !subsetSub(preds[u], preds[v], u, v) {
		return fmt.Errorf("rewrite: cert %s: predecessors not covered", c)
	}
	if !subsetSub(su.Succ, sv.Succ, u, v) {
		return fmt.Errorf("rewrite: cert %s: successors not covered", c)
	}
	return nil
}

// subsetSub reports whether every element of a, after substituting u with
// v, occurs in b.
func subsetSub(a, b []automata.StateID, u, v automata.StateID) bool {
	in := make(map[automata.StateID]struct{}, len(b))
	for _, x := range b {
		in[x] = struct{}{}
	}
	for _, x := range a {
		if x == u {
			x = v
		}
		if _, ok := in[x]; !ok {
			return false
		}
	}
	return true
}

// equalInts reports whether two sorted int slices are equal.
func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
