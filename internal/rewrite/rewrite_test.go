// Property tests for the proof-carrying rewriter. The central claim —
// the rewritten network produces a bit-identical report stream — is
// checked by running both networks on the same input and comparing the
// per-position report multisets after mapping rewritten state IDs back
// through OrigOf. Reporting states are never merged or renamed to other
// reporting states, so the comparison is exact.
//
// External test package: the suite test imports workloads, which will
// come to depend on this package.
package rewrite_test

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"sparseap/internal/automata"
	"sparseap/internal/rewrite"
	"sparseap/internal/sim"
	"sparseap/internal/symset"
	"sparseap/internal/workloads"
)

// reportsAt groups reports by position, mapping each state through mapID
// (nil = identity) and sorting within each position.
func reportsAt(reps []sim.Report, mapID func(automata.StateID) automata.StateID) map[int64][]automata.StateID {
	m := make(map[int64][]automata.StateID)
	for _, r := range reps {
		s := r.State
		if mapID != nil {
			s = mapID(s)
		}
		m[r.Pos] = append(m[r.Pos], s)
	}
	for _, v := range m {
		sort.Slice(v, func(a, b int) bool { return v[a] < v[b] })
	}
	return m
}

// checkEquivalent asserts the rewritten network reports identically to
// the original on the given input, and that the result's certificates
// verify.
func checkEquivalent(t *testing.T, orig *automata.Network, res *rewrite.Result, input []byte, alphabet symset.Set) {
	t.Helper()
	if err := res.Check(alphabet); err != nil {
		t.Fatalf("certificates failed verification: %v", err)
	}
	want := reportsAt(sim.Run(orig, input, sim.Options{CollectReports: true}).Reports, nil)
	var got map[int64][]automata.StateID
	if res.Net.Len() == 0 {
		got = map[int64][]automata.StateID{}
	} else {
		got = reportsAt(sim.Run(res.Net, input, sim.Options{CollectReports: true}).Reports,
			func(s automata.StateID) automata.StateID { return res.OrigOf[s] })
	}
	if len(got) == 0 && len(want) == 0 {
		return
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("report streams differ:\n orig: %v\n rewritten: %v\n stats: %+v", want, got, res.Stats)
	}
}

// checkIdempotent asserts a second rewrite of the result is a no-op.
func checkIdempotent(t *testing.T, res *rewrite.Result, opts rewrite.Options) {
	t.Helper()
	again, err := rewrite.Rewrite(res.Net, opts)
	if err != nil {
		t.Fatalf("second rewrite: %v", err)
	}
	if again.Changed() {
		t.Fatalf("rewrite is not idempotent: second run changed the network (stats %+v)", again.Stats)
	}
}

// checkMaps asserts OrigOf/NewID are mutually consistent.
func checkMaps(t *testing.T, orig *automata.Network, res *rewrite.Result) {
	t.Helper()
	if len(res.OrigOf) != res.Net.Len() || len(res.NewID) != orig.Len() {
		t.Fatalf("map lengths: OrigOf %d (want %d), NewID %d (want %d)",
			len(res.OrigOf), res.Net.Len(), len(res.NewID), orig.Len())
	}
	for k, o := range res.OrigOf {
		if o < 0 || int(o) >= orig.Len() {
			t.Fatalf("OrigOf[%d] = %d out of range", k, o)
		}
		if res.NewID[o] != automata.StateID(k) {
			t.Fatalf("NewID[OrigOf[%d]] = %d, want %d (representatives must round-trip)", k, res.NewID[o], k)
		}
	}
	for o, k := range res.NewID {
		if k == automata.None {
			continue
		}
		if int(k) >= res.Net.Len() {
			t.Fatalf("NewID[%d] = %d out of range", o, k)
		}
		// A surviving state maps to a state of the same match/start kind
		// class; reporting states map to themselves.
		if orig.States[o].Report && res.OrigOf[k] != automata.StateID(o) {
			t.Fatalf("reporting state %d renamed to %d", o, res.OrigOf[k])
		}
	}
}

func mustRewrite(t *testing.T, net *automata.Network, opts rewrite.Options) *rewrite.Result {
	t.Helper()
	res, err := rewrite.Rewrite(net, opts)
	if err != nil {
		t.Fatalf("Rewrite: %v", err)
	}
	return res
}

func TestRemoveUnreachableAndDead(t *testing.T) {
	// start(a) -> mid(∅) -> rep(c): mid and rep are unreachable, and the
	// start is then dead — everything goes.
	m := automata.NewNFA()
	s0 := m.Add(symset.Single('a'), automata.StartAllInput, false)
	s1 := m.Add(symset.Empty(), automata.StartNone, false)
	s2 := m.Add(symset.Single('c'), automata.StartNone, true)
	m.Connect(s0, s1)
	m.Connect(s1, s2)
	net := automata.NewNetwork(m)
	res := mustRewrite(t, net, rewrite.Options{})
	if res.Net.Len() != 0 {
		t.Fatalf("expected empty network, got %d states", res.Net.Len())
	}
	if res.Stats.Unreachable != 2 || res.Stats.Dead != 1 {
		t.Fatalf("stats: %+v, want 2 unreachable + 1 dead", res.Stats)
	}
	checkEquivalent(t, net, res, []byte("abcabc"), symset.Set{})
	checkIdempotent(t, res, rewrite.Options{})
}

func TestPruneDuplicateAndAllInputEdges(t *testing.T) {
	m := automata.NewNFA()
	s0 := m.Add(symset.Single('a'), automata.StartAllInput, false)
	s1 := m.Add(symset.Single('b'), automata.StartNone, true)
	m.Connect(s0, s1)
	m.Connect(s0, s1) // duplicate
	m.Connect(s1, s0) // edge into an all-input start: a no-op
	net := automata.NewNetwork(m)
	res := mustRewrite(t, net, rewrite.Options{})
	if res.Stats.EdgesPruned != 2 {
		t.Fatalf("EdgesPruned = %d, want 2 (one duplicate, one all-input target)", res.Stats.EdgesPruned)
	}
	if res.Stats.EdgesAfter != 1 {
		t.Fatalf("EdgesAfter = %d, want 1", res.Stats.EdgesAfter)
	}
	checkEquivalent(t, net, res, []byte("ababab"), symset.Set{})
	checkIdempotent(t, res, rewrite.Options{})
}

func TestSubsumedSibling(t *testing.T) {
	// Two children of one start; u matches a subset of v and its only
	// successor is shared with v, so u is subsumed. A reporting tail
	// keeps everything live.
	m := automata.NewNFA()
	s0 := m.Add(symset.Range('a', 'z'), automata.StartAllInput, false)
	u := m.Add(symset.Single('b'), automata.StartNone, false)
	v := m.Add(symset.Range('a', 'c'), automata.StartNone, false)
	tail := m.Add(symset.Single('x'), automata.StartNone, true)
	m.Connect(s0, u)
	m.Connect(s0, v)
	m.Connect(u, tail)
	m.Connect(v, tail)
	net := automata.NewNetwork(m)
	res := mustRewrite(t, net, rewrite.Options{})
	if res.Stats.Subsumed != 1 {
		t.Fatalf("Subsumed = %d, want 1 (stats %+v)", res.Stats.Subsumed, res.Stats)
	}
	if res.NewID[u] != automata.None {
		t.Fatalf("subsumed state %d should be deleted", u)
	}
	checkEquivalent(t, net, res, []byte("abxbxcx"), symset.Set{})
	checkIdempotent(t, res, rewrite.Options{})
}

// twoNFAStartFold builds two NFAs with identical all-input starts and
// identical two-state chains, differing only in the reporting tail.
func twoNFAStartFold() *automata.Network {
	build := func(tailSym byte) *automata.NFA {
		m := automata.NewNFA()
		s0 := m.Add(symset.Single('a'), automata.StartAllInput, false)
		mid := m.Add(symset.Single('b'), automata.StartNone, false)
		tail := m.Add(symset.Single(tailSym), automata.StartNone, true)
		m.Connect(s0, mid)
		m.Connect(mid, tail)
		return m
	}
	return automata.NewNetwork(build('x'), build('y'))
}

func TestStartFoldingAcrossNFAs(t *testing.T) {
	net := twoNFAStartFold()
	res := mustRewrite(t, net, rewrite.Options{})
	// The two starts fold (identical match, all-input), which makes the
	// two mids bisimilar too: 6 states become 4, one fused NFA.
	if res.Stats.StartsFolded != 1 {
		t.Fatalf("StartsFolded = %d, want 1 (stats %+v)", res.Stats.StartsFolded, res.Stats)
	}
	if res.Net.Len() != 4 || res.Net.NumNFAs() != 1 {
		t.Fatalf("got %d states in %d NFAs, want 4 in 1 (stats %+v)", res.Net.Len(), res.Net.NumNFAs(), res.Stats)
	}
	checkEquivalent(t, net, res, []byte("abxabyab"), symset.Set{})
	checkIdempotent(t, res, rewrite.Options{})
	checkMaps(t, net, res)
}

func TestCapacityGuardDemotes(t *testing.T) {
	net := twoNFAStartFold()
	// A fused component would have 4 states; capacity 3 forbids it.
	res := mustRewrite(t, net, rewrite.Options{Capacity: 3})
	if res.Stats.DemotedClasses == 0 {
		t.Fatalf("expected demoted classes under capacity 3 (stats %+v)", res.Stats)
	}
	if res.Net.NumNFAs() != 2 {
		t.Fatalf("NFAs = %d, want 2 (merge must be reverted)", res.Net.NumNFAs())
	}
	for i := 0; i < res.Net.NumNFAs(); i++ {
		if res.Net.NFASize(i) > 3 {
			t.Fatalf("NFA %d has %d states, exceeds capacity 3", i, res.Net.NFASize(i))
		}
	}
	checkEquivalent(t, net, res, []byte("abxabyab"), symset.Set{})
	checkIdempotent(t, res, rewrite.Options{Capacity: 3})
}

func TestAlphabetRestrictedRewrite(t *testing.T) {
	// One branch matches only '!' which is outside the assumed alphabet;
	// it must vanish, and equivalence holds for inputs inside the
	// alphabet.
	m := automata.NewNFA()
	s0 := m.Add(symset.Range('a', 'z'), automata.StartAllInput, false)
	bad := m.Add(symset.Single('!'), automata.StartNone, false)
	badTail := m.Add(symset.Single('q'), automata.StartNone, true)
	good := m.Add(symset.Single('g'), automata.StartNone, true)
	m.Connect(s0, bad)
	m.Connect(bad, badTail)
	m.Connect(s0, good)
	net := automata.NewNetwork(m)
	alpha := symset.Range('a', 'z')
	opts := rewrite.Options{Alphabet: alpha}
	res := mustRewrite(t, net, opts)
	if res.Net.Len() != 2 {
		t.Fatalf("got %d states, want 2 (stats %+v)", res.Net.Len(), res.Stats)
	}
	checkEquivalent(t, net, res, []byte("agzgqg"), alpha)
	checkIdempotent(t, res, opts)
}

func TestNoStartNFADeleted(t *testing.T) {
	withStart := automata.NewNFA()
	s0 := withStart.Add(symset.Single('a'), automata.StartAllInput, true)
	_ = s0
	orphan := automata.NewNFA()
	o0 := orphan.Add(symset.Single('b'), automata.StartNone, false)
	o1 := orphan.Add(symset.Single('c'), automata.StartNone, true)
	orphan.Connect(o0, o1)
	net := automata.NewNetwork(withStart, orphan)
	res := mustRewrite(t, net, rewrite.Options{})
	if res.Net.NumNFAs() != 1 || res.Net.Len() != 1 {
		t.Fatalf("got %d states in %d NFAs, want the orphan NFA deleted", res.Net.Len(), res.Net.NumNFAs())
	}
	checkEquivalent(t, net, res, []byte("abcabc"), symset.Set{})
}

func TestEmptyNetwork(t *testing.T) {
	net := &automata.Network{}
	res := mustRewrite(t, net, rewrite.Options{})
	if res.Changed() || res.Net.Len() != 0 {
		t.Fatalf("empty network must pass through unchanged")
	}
}

func TestCheckCertsRejectsBogus(t *testing.T) {
	m := automata.NewNFA()
	s0 := m.Add(symset.Single('a'), automata.StartAllInput, false)
	s1 := m.Add(symset.Single('b'), automata.StartNone, true)
	s2 := m.Add(symset.Single('c'), automata.StartNone, true)
	m.Connect(s0, s1)
	m.Connect(s0, s2)
	net := automata.NewNetwork(m)

	cases := []struct {
		name  string
		certs []rewrite.Cert
	}{
		{"live state claimed unreachable", []rewrite.Cert{
			{Kind: rewrite.CertUnreachable, State: s1}}},
		{"reporting state claimed dead", []rewrite.Cert{
			{Kind: rewrite.CertDead, State: s1}}},
		{"firing chain claimed dead", []rewrite.Cert{
			{Kind: rewrite.CertDead, State: s0}}},
		{"nonexistent edge", []rewrite.Cert{
			{Kind: rewrite.CertRedundantEdge, From: s1, To: s2}}},
		{"single listing claimed duplicate", []rewrite.Cert{
			{Kind: rewrite.CertRedundantEdge, From: s0, To: s1}}},
		{"report subsumption", []rewrite.Cert{
			{Kind: rewrite.CertSubsumed, State: s1, Into: s2}}},
		{"reporting states merged", []rewrite.Cert{
			{Kind: rewrite.CertBisimClass, Class: []automata.StateID{s1, s2}}}},
		{"unstable class", []rewrite.Cert{
			{Kind: rewrite.CertBisimClass, Class: []automata.StateID{s0, s1}}}},
	}
	for _, tc := range cases {
		if err := rewrite.CheckCerts(net, tc.certs, symset.Set{}); err == nil {
			t.Errorf("%s: CheckCerts accepted a bogus certificate", tc.name)
		}
	}
}

func TestCheckCertsAcceptsValid(t *testing.T) {
	// Two identical non-reporting siblings with a shared reporting tail:
	// a valid 2-member class.
	m := automata.NewNFA()
	s0 := m.Add(symset.Single('a'), automata.StartAllInput, false)
	u := m.Add(symset.Single('b'), automata.StartNone, false)
	v := m.Add(symset.Single('b'), automata.StartNone, false)
	tail := m.Add(symset.Single('c'), automata.StartNone, true)
	m.Connect(s0, u)
	m.Connect(s0, v)
	m.Connect(u, tail)
	m.Connect(v, tail)
	net := automata.NewNetwork(m)
	certs := []rewrite.Cert{{Kind: rewrite.CertBisimClass, Class: []automata.StateID{u, v}}}
	if err := rewrite.CheckCerts(net, certs, symset.Set{}); err != nil {
		t.Fatalf("valid class rejected: %v", err)
	}
}

// suiteConfig is the test-scale workload configuration: small enough for
// the full 26-app sweep to run in seconds, large enough that every
// generator's structure survives scaling.
var suiteConfig = workloads.Config{Divisor: 64, InputLen: 4096, Seed: 1}

func TestSuiteEquivalence(t *testing.T) {
	apps, err := workloads.BuildAll(suiteConfig)
	if err != nil {
		t.Fatal(err)
	}
	for _, app := range apps {
		app := app
		t.Run(app.Abbr, func(t *testing.T) {
			t.Parallel()
			res := mustRewrite(t, app.Net, rewrite.Options{})
			checkMaps(t, app.Net, res)
			if res.Net.Len() > 0 {
				if err := res.Net.Validate(); err != nil {
					t.Fatalf("rewritten network invalid: %v", err)
				}
			}
			checkEquivalent(t, app.Net, res, app.Input, symset.Set{})
			checkIdempotent(t, res, rewrite.Options{})
		})
	}
}

// randNet generates a random multi-NFA network: random match sets over a
// small alphabet (including occasionally empty ones), random start kinds
// and report flags, random edges with duplicates. Shared with
// FuzzRewriteEquivalence.
func randNet(r *rand.Rand) *automata.Network {
	numNFAs := 1 + r.Intn(3)
	nfas := make([]*automata.NFA, 0, numNFAs)
	for i := 0; i < numNFAs; i++ {
		m := automata.NewNFA()
		n := 1 + r.Intn(12)
		for s := 0; s < n; s++ {
			var match symset.Set
			switch r.Intn(5) {
			case 0:
				match = symset.Single(byte('a' + r.Intn(4)))
			case 1:
				match = symset.Range('a', byte('a'+r.Intn(6)))
			case 2:
				match = symset.Of('a', 'c')
			case 3:
				match = symset.Empty()
			default:
				match = symset.Range('a', 'f')
			}
			start := automata.StartNone
			if s == 0 || r.Intn(6) == 0 {
				if r.Intn(4) == 0 {
					start = automata.StartOfData
				} else {
					start = automata.StartAllInput
				}
			}
			m.Add(match, start, r.Intn(5) == 0)
		}
		for e := r.Intn(3 * n); e > 0; e-- {
			m.Connect(automata.StateID(r.Intn(n)), automata.StateID(r.Intn(n)))
		}
		nfas = append(nfas, m)
	}
	return automata.NewNetwork(nfas...)
}

func randInput(r *rand.Rand, n int) []byte {
	in := make([]byte, n)
	for i := range in {
		in[i] = byte('a' + r.Intn(8)) // 'a'..'h': beyond most match sets sometimes
	}
	return in
}

func TestRandomNetworkEquivalence(t *testing.T) {
	for seed := int64(1); seed <= 200; seed++ {
		r := rand.New(rand.NewSource(seed))
		net := randNet(r)
		input := randInput(r, 256)
		res, err := rewrite.Rewrite(net, rewrite.Options{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		checkMaps(t, net, res)
		checkEquivalent(t, net, res, input, symset.Set{})
		checkIdempotent(t, res, rewrite.Options{})
	}
}

// FuzzRewriteEquivalence generates a random network and input from the
// fuzzed seeds, rewrites the network, and requires the report streams to
// match and the certificates to verify. It is the adversarial version of
// TestRandomNetworkEquivalence.
func FuzzRewriteEquivalence(f *testing.F) {
	for seed := int64(1); seed <= 8; seed++ {
		f.Add(seed, seed*31)
	}
	f.Fuzz(func(t *testing.T, netSeed, inputSeed int64) {
		r := rand.New(rand.NewSource(netSeed))
		net := randNet(r)
		input := randInput(rand.New(rand.NewSource(inputSeed)), 128)
		res, err := rewrite.Rewrite(net, rewrite.Options{})
		if err != nil {
			t.Fatalf("Rewrite: %v", err)
		}
		checkMaps(t, net, res)
		checkEquivalent(t, net, res, input, symset.Set{})
		checkIdempotent(t, res, rewrite.Options{})
	})
}
