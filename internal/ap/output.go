package ap

// Output-reporting overhead model. The paper excludes report-output costs
// from its evaluation (Section VI-B), citing prior work that mitigates the
// bottleneck in hardware; this model makes the excluded quantity
// measurable so the exclusion can be sanity-checked: on every cycle that
// produces at least one report, the AP must latch an output vector into a
// region buffer, and a full buffer stalls the input stream until a vector
// drains to the host.

// OutputModel describes the report-output path of one half-core.
type OutputModel struct {
	// BufferDepth is the number of output vectors the on-chip region
	// buffer holds before the input stalls.
	BufferDepth int
	// DrainCycles is the time to move one vector off-chip.
	DrainCycles int
}

// DefaultOutputModel mirrors the D480-era output region: a 32-vector
// buffer draining one 1024-bit vector every 8 cycles.
func DefaultOutputModel() OutputModel {
	return OutputModel{BufferDepth: 32, DrainCycles: 8}
}

// Overhead simulates the output path over the distinct report positions of
// one execution (positions must be sorted ascending; duplicates are
// allowed and collapse into one vector) and returns the input stall
// cycles the paper's evaluation leaves out.
func (m OutputModel) Overhead(positions []int64) int64 {
	if len(positions) == 0 || m.BufferDepth <= 0 {
		return 0
	}
	var (
		stalls   int64
		buffered int   // vectors currently in the buffer
		drainAt  int64 // absolute cycle when the oldest vector finishes draining
		lastPos  int64 = -1
	)
	now := int64(0)
	for _, pos := range positions {
		if pos == lastPos {
			continue // same-cycle reports share one output vector
		}
		lastPos = pos
		if pos > now {
			now = pos
		}
		// Drain everything that completed before this cycle.
		for buffered > 0 && drainAt <= now {
			buffered--
			drainAt += int64(m.DrainCycles)
		}
		if buffered == 0 {
			drainAt = now + int64(m.DrainCycles)
		}
		if buffered == m.BufferDepth {
			// Stall until one vector drains.
			wait := drainAt - now
			if wait > 0 {
				stalls += wait
				now = drainAt
			}
			buffered--
			drainAt += int64(m.DrainCycles)
		}
		buffered++
	}
	return stalls
}
