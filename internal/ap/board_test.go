package ap

import "testing"

func TestBoardValidate(t *testing.T) {
	if err := DefaultBoard().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := DefaultBoard()
	bad.HalfCores = 0
	if bad.Validate() == nil {
		t.Fatal("zero half-cores validated")
	}
	bad = DefaultBoard()
	bad.HalfCore.Capacity = 0
	if bad.Validate() == nil {
		t.Fatal("invalid half-core validated")
	}
}

func TestBoardRounds(t *testing.T) {
	b := Board{HalfCore: DefaultConfig(), HalfCores: 2}
	cases := [][2]int{{1, 1}, {2, 1}, {3, 2}, {4, 2}, {47, 24}}
	for _, c := range cases {
		if got := b.Rounds(c[0]); got != c[1] {
			t.Errorf("Rounds(%d) = %d, want %d", c[0], got, c[1])
		}
	}
}

func TestBoardBaselineCycles(t *testing.T) {
	net := makeNet(4, 4, 4, 4) // 16 states
	b := Board{HalfCore: DefaultConfig().WithCapacity(4), HalfCores: 2}
	rounds, cycles, err := b.BaselineCycles(net, 100)
	if err != nil {
		t.Fatal(err)
	}
	if rounds != 2 || cycles != 200 { // 4 batches on 2 half-cores
		t.Fatalf("rounds=%d cycles=%d", rounds, cycles)
	}
	// A wide board collapses to one round.
	b.HalfCores = 8
	rounds, cycles, err = b.BaselineCycles(net, 100)
	if err != nil {
		t.Fatal(err)
	}
	if rounds != 1 || cycles != 100 {
		t.Fatalf("wide board rounds=%d cycles=%d", rounds, cycles)
	}
	// Oversized NFA propagates the batching error.
	b.HalfCore = DefaultConfig().WithCapacity(2)
	if _, _, err := b.BaselineCycles(net, 100); err == nil {
		t.Fatal("oversized NFA accepted")
	}
	b.HalfCores = 0
	if _, _, err := b.BaselineCycles(net, 100); err == nil {
		t.Fatal("invalid board accepted")
	}
}
