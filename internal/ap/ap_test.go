package ap

import (
	"math/rand"
	"testing"

	"sparseap/internal/automata"
	"sparseap/internal/symset"
)

// makeNet builds a network of nfas chains with the given sizes; each chain
// matches 'a'+ and reports at its tail.
func makeNet(sizes ...int) *automata.Network {
	nfas := make([]*automata.NFA, len(sizes))
	for i, sz := range sizes {
		m := automata.NewNFA()
		prev := m.Add(symset.Single('a'), automata.StartAllInput, false)
		for k := 1; k < sz; k++ {
			cur := m.Add(symset.Single('a'), automata.StartNone, k == sz-1)
			m.Connect(prev, cur)
			prev = cur
		}
		if sz == 1 {
			m.States[0].Report = true
		}
		nfas[i] = m
	}
	return automata.NewNetwork(nfas...)
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("DefaultConfig invalid: %v", err)
	}
	if err := PaperConfig().Validate(); err != nil {
		t.Fatalf("PaperConfig invalid: %v", err)
	}
	bad := DefaultConfig()
	bad.Capacity = 0
	if bad.Validate() == nil {
		t.Error("zero capacity validated")
	}
	bad = DefaultConfig()
	bad.Blocks = 1
	if bad.Validate() == nil {
		t.Error("undersized hierarchy validated")
	}
	bad = DefaultConfig()
	bad.ReportQueueLen = 0
	if bad.Validate() == nil {
		t.Error("zero report queue validated")
	}
}

func TestWithCapacity(t *testing.T) {
	c := DefaultConfig().WithCapacity(6000)
	if c.Capacity != 6000 {
		t.Fatalf("capacity = %d", c.Capacity)
	}
	if err := c.Validate(); err != nil {
		t.Fatalf("scaled config invalid: %v", err)
	}
	if c.Blocks != 24 { // 6000 / 256 rounded up
		t.Errorf("blocks = %d, want 24", c.Blocks)
	}
}

func TestAddressRoundTrip(t *testing.T) {
	c := PaperConfig()
	for _, i := range []int{0, 1, 255, 256, 4095, 23999} {
		a, err := c.AddressOf(i)
		if err != nil {
			t.Fatalf("AddressOf(%d): %v", i, err)
		}
		w, err := c.EncodeAddress(a)
		if err != nil {
			t.Fatalf("EncodeAddress(%+v): %v", a, err)
		}
		if got := c.DecodeAddress(w); got != a {
			t.Fatalf("decode(encode(%+v)) = %+v", a, got)
		}
	}
	if _, err := c.AddressOf(-1); err == nil {
		t.Error("negative index accepted")
	}
	if _, err := c.AddressOf(24000); err == nil {
		t.Error("out-of-capacity index accepted")
	}
	if _, err := c.EncodeAddress(Address{Block: 999}); err == nil {
		t.Error("out-of-hierarchy address encoded")
	}
}

func TestAddressOfHierarchy(t *testing.T) {
	c := PaperConfig()
	a, _ := c.AddressOf(16*16 + 16 + 3) // block 1, row 1, ste 3
	want := Address{Block: 1, Row: 1, STE: 3}
	if a != want {
		t.Fatalf("AddressOf = %+v, want %+v", a, want)
	}
}

func TestPartitionNFAsFirstFit(t *testing.T) {
	net := makeNet(6, 3, 3, 2)
	batches, err := PartitionNFAs(net, 7)
	if err != nil {
		t.Fatal(err)
	}
	// FFD: 6 -> batch0; 3 -> batch1; 3 -> batch1 (3+3=6<=7); 2 -> batch0? 6+2>7, batch1? 6+2>7 -> batch2.
	if len(batches) != 3 {
		t.Fatalf("batches = %d, want 3 (%+v)", len(batches), batches)
	}
	total := 0
	seen := map[int]bool{}
	for _, b := range batches {
		if b.States > 7 {
			t.Errorf("batch exceeds capacity: %+v", b)
		}
		sum := 0
		for _, idx := range b.NFAs {
			if seen[idx] {
				t.Errorf("NFA %d in multiple batches", idx)
			}
			seen[idx] = true
			sum += net.NFASize(idx)
		}
		if sum != b.States {
			t.Errorf("batch state count mismatch: %+v", b)
		}
		total += sum
	}
	if total != net.Len() {
		t.Errorf("states covered = %d, want %d", total, net.Len())
	}
}

func TestPartitionNFAsOversized(t *testing.T) {
	net := makeNet(10)
	if _, err := PartitionNFAs(net, 5); err == nil {
		t.Error("oversized NFA accepted")
	}
}

func TestRunBaseline(t *testing.T) {
	net := makeNet(4, 4, 4) // 12 states
	cfg := DefaultConfig().WithCapacity(8)
	input := []byte("aaaaaaaaaa") // 10 a's: chains of 4 report at pos>=3
	res, err := RunBaseline(net, input, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Batches != 2 {
		t.Fatalf("batches = %d, want 2", res.Batches)
	}
	if res.Cycles != 20 {
		t.Fatalf("cycles = %d, want 20", res.Cycles)
	}
	// Each chain reports at positions 3..9 = 7 reports, 3 chains = 21.
	if res.Reports != 21 {
		t.Fatalf("reports = %d, want 21", res.Reports)
	}
	if res.TimeNS != 20*cfg.CycleNS {
		t.Fatalf("time = %v", res.TimeNS)
	}
}

func TestBaselineCyclesMatchesTableIVRatios(t *testing.T) {
	// An app with 47 units of states on a 1-unit AP takes 47 batches,
	// mirroring CAV4k's 47 baseline executions.
	sizes := make([]int, 470)
	for i := range sizes {
		sizes[i] = 10
	}
	net := makeNet(sizes...)
	batches, cycles, err := BaselineCycles(net, 1000, 100)
	if err != nil {
		t.Fatal(err)
	}
	if batches != 47 {
		t.Fatalf("batches = %d, want 47", batches)
	}
	if cycles != 47000 {
		t.Fatalf("cycles = %d", cycles)
	}
}

func TestThroughputAndPerfPerSTE(t *testing.T) {
	if Throughput(100, 200) != 0.5 {
		t.Error("Throughput wrong")
	}
	if Throughput(100, 0) != 0 {
		t.Error("Throughput div-by-zero")
	}
	if PerfPerSTE(100, 100, 10) != 0.1 {
		t.Error("PerfPerSTE wrong")
	}
}

// Property: first-fit-decreasing batching never exceeds capacity, covers
// every NFA exactly once, and uses at most 2× the optimal bin count.
func TestPropPartitionNFAs(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for trial := 0; trial < 40; trial++ {
		n := 1 + r.Intn(40)
		capacity := 10 + r.Intn(90)
		sizes := make([]int, n)
		total := 0
		for i := range sizes {
			sizes[i] = 1 + r.Intn(capacity)
			total += sizes[i]
		}
		net := makeNet(sizes...)
		batches, err := PartitionNFAs(net, capacity)
		if err != nil {
			t.Fatal(err)
		}
		covered := 0
		for _, b := range batches {
			if b.States > capacity {
				t.Fatalf("batch over capacity: %+v", b)
			}
			covered += b.States
		}
		if covered != total {
			t.Fatalf("covered %d != total %d", covered, total)
		}
		lower := (total + capacity - 1) / capacity
		if len(batches) > 2*lower {
			t.Fatalf("FFD used %d batches, lower bound %d", len(batches), lower)
		}
	}
}
