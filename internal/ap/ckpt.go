package ap

import (
	"context"

	"sparseap/internal/automata"
	"sparseap/internal/checkpoint"
	"sparseap/internal/sim"
)

// RunBaselineCheckpointedContext is RunBaselineContext with durable
// checkpoints: the underlying simulation pass snapshots its engine state
// through ck every Runner.Every symbols and resumes from the newest valid
// checkpoint instead of re-streaming from symbol 0. The batching model is
// unchanged — cycle accounting still charges every batch for the full
// input — so an uninterrupted checkpointed run returns exactly what
// RunBaselineContext returns, and a resumed one reconstructs the same
// report stream bit-identically (restored prefix + deterministic re-run).
// When collect is true the final report list is returned alongside the
// summary, in stream order, for equivalence checking.
func RunBaselineCheckpointedContext(ctx context.Context, net *automata.Network, input []byte, cfg Config, collect bool, ck *checkpoint.Runner) (*BaselineResult, []sim.Report, error) {
	if err := cfg.Validate(); err != nil {
		return nil, nil, err
	}
	batches, err := PartitionNFAs(net, cfg.Capacity)
	if err != nil {
		return nil, nil, err
	}
	res, err := sim.RunCheckpointedContext(ctx, net, input, sim.Options{CollectReports: collect}, ck)
	if res == nil {
		return nil, nil, err
	}
	return &BaselineResult{
		Batches: len(batches),
		Cycles:  int64(len(batches)) * res.Symbols,
		Reports: res.NumReports,
		TimeNS:  float64(len(batches)) * float64(res.Symbols) * cfg.CycleNS,
	}, res.Reports, err
}
