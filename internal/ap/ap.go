// Package ap models the Automata Processor hardware of Section II-B: a
// DRAM-based spatial fabric where each NFA state occupies one STE (a
// 256-row memory column), a half-core holds a fixed number of STEs, and an
// application larger than the half-core runs as a sequence of batches, each
// re-streaming the entire input at one symbol per cycle.
//
// The package provides the capacity/batching/cycle-accounting model, the
// hierarchical block/row/STE addressing used by the SpAP enable operation,
// and the baseline batched execution the paper compares against.
package ap

import (
	"context"
	"fmt"
	"sort"

	"sparseap/internal/automata"
	"sparseap/internal/sim"
)

// Config describes one AP half-core (the paper's basic processing unit).
type Config struct {
	// Capacity is the number of STEs (NFA states) the half-core holds.
	// The paper's half-core holds 24K; experiments here default to the
	// 1/8-scaled 3K (see DESIGN.md).
	Capacity int
	// CycleNS is the symbol cycle time in nanoseconds (7.5 in the paper).
	CycleNS float64
	// Blocks, RowsPerBlock and STEsPerRow describe the routing-matrix
	// hierarchy used by the SpAP enable decoder (96 × 16 × 16 = 24K).
	Blocks       int
	RowsPerBlock int
	STEsPerRow   int
	// ReportQueueLen is the on-chip intermediate-report queue length
	// (128 entries × 6 bytes in the paper).
	ReportQueueLen int
	// EnablePorts is the number of simultaneous SpAP enable operations
	// that can overlap with one input cycle. The paper's design has 1
	// (each extra same-position report stalls a cycle); higher values
	// model a wider enable decoder for sensitivity studies.
	EnablePorts int
	// ReconfigNS is the board reconfiguration latency (50 ms in the
	// paper); the evaluation excludes it, as the paper does, but the
	// model exposes it for sensitivity studies.
	ReconfigNS float64
}

// DefaultConfig returns the paper's half-core scaled by 1/8: 3K STEs with
// a proportionally scaled block hierarchy. Timing parameters are unscaled.
func DefaultConfig() Config {
	return Config{
		Capacity:       3000,
		CycleNS:        7.5,
		Blocks:         12,
		RowsPerBlock:   16,
		STEsPerRow:     16,
		ReportQueueLen: 128,
		EnablePorts:    1,
		ReconfigNS:     50e6,
	}
}

// PaperConfig returns the unscaled 24K half-core of the paper.
func PaperConfig() Config {
	c := DefaultConfig()
	c.Capacity = 24000
	c.Blocks = 96
	return c
}

// WithCapacity returns a copy of c with the given STE capacity and a block
// count scaled to cover it.
func (c Config) WithCapacity(capacity int) Config {
	c.Capacity = capacity
	per := c.RowsPerBlock * c.STEsPerRow
	c.Blocks = (capacity + per - 1) / per
	return c
}

// Validate checks the configuration for internal consistency.
func (c Config) Validate() error {
	if c.Capacity <= 0 {
		return fmt.Errorf("ap: capacity must be positive")
	}
	if c.Blocks*c.RowsPerBlock*c.STEsPerRow < c.Capacity {
		return fmt.Errorf("ap: hierarchy %d×%d×%d holds fewer STEs than capacity %d",
			c.Blocks, c.RowsPerBlock, c.STEsPerRow, c.Capacity)
	}
	if c.ReportQueueLen <= 0 {
		return fmt.Errorf("ap: report queue must be positive")
	}
	if c.EnablePorts <= 0 {
		return fmt.Errorf("ap: enable ports must be positive")
	}
	return nil
}

// Address is a hierarchical STE address: the SpAP enable operation selects
// the block, then the row, then the STE (Section V-B).
type Address struct {
	Block int
	Row   int
	STE   int
}

// EncodeAddress packs an address into the 16-bit state-ID wire format used
// by the enable decoders: 8 bits of block, 4 of row, 4 of STE.
func (c Config) EncodeAddress(a Address) (uint16, error) {
	if a.Block < 0 || a.Block >= c.Blocks || a.Row < 0 || a.Row >= c.RowsPerBlock ||
		a.STE < 0 || a.STE >= c.STEsPerRow {
		return 0, fmt.Errorf("ap: address %+v outside hierarchy", a)
	}
	if c.RowsPerBlock > 16 || c.STEsPerRow > 16 || c.Blocks > 256 {
		return 0, fmt.Errorf("ap: hierarchy too large for 16-bit addresses")
	}
	return uint16(a.Block)<<8 | uint16(a.Row)<<4 | uint16(a.STE), nil
}

// DecodeAddress unpacks a 16-bit state ID into a hierarchical address.
func (c Config) DecodeAddress(w uint16) Address {
	return Address{Block: int(w >> 8), Row: int(w >> 4 & 0xf), STE: int(w & 0xf)}
}

// AddressOf returns the hierarchical address of the i-th STE placed in a
// half-core under row-major placement.
func (c Config) AddressOf(i int) (Address, error) {
	if i < 0 || i >= c.Capacity {
		return Address{}, fmt.Errorf("ap: STE index %d outside capacity %d", i, c.Capacity)
	}
	perBlock := c.RowsPerBlock * c.STEsPerRow
	return Address{
		Block: i / perBlock,
		Row:   i % perBlock / c.STEsPerRow,
		STE:   i % c.STEsPerRow,
	}, nil
}

// Batch is one AP configuration: a set of NFA indices that collectively fit
// in the half-core.
type Batch struct {
	NFAs   []int
	States int
}

// PartitionNFAs packs the network's NFAs into batches of at most capacity
// states using first-fit decreasing, the standard bin-packing heuristic for
// the AP compiler's NFA-granularity placement. It fails if any single NFA
// exceeds the capacity.
func PartitionNFAs(net *automata.Network, capacity int) ([]Batch, error) {
	type item struct{ idx, size int }
	items := make([]item, net.NumNFAs())
	for i := range items {
		items[i] = item{idx: i, size: net.NFASize(i)}
		if items[i].size > capacity {
			return nil, fmt.Errorf("ap: NFA %d has %d states, exceeding half-core capacity %d",
				i, items[i].size, capacity)
		}
	}
	sort.Slice(items, func(a, b int) bool {
		if items[a].size != items[b].size {
			return items[a].size > items[b].size
		}
		return items[a].idx < items[b].idx
	})
	var batches []Batch
	for _, it := range items {
		placed := false
		for bi := range batches {
			if batches[bi].States+it.size <= capacity {
				batches[bi].NFAs = append(batches[bi].NFAs, it.idx)
				batches[bi].States += it.size
				placed = true
				break
			}
		}
		if !placed {
			batches = append(batches, Batch{NFAs: []int{it.idx}, States: it.size})
		}
	}
	for bi := range batches {
		sort.Ints(batches[bi].NFAs)
	}
	return batches, nil
}

// BaselineResult summarizes the baseline batched AP execution.
type BaselineResult struct {
	// Batches is the number of configurations (Table IV column 1).
	Batches int
	// Cycles is Batches × input length: each batch re-streams the input.
	Cycles int64
	// Reports is the total number of reports across batches.
	Reports int64
	// TimeNS is Cycles × CycleNS.
	TimeNS float64
}

// RunBaseline executes the baseline AP system: the network is packed into
// NFA-granularity batches and each batch consumes the entire input. Reports
// are produced functionally (they are identical to a single full-network
// pass because batches are independent); cycles follow the batching model.
func RunBaseline(net *automata.Network, input []byte, cfg Config) (*BaselineResult, error) {
	return RunBaselineContext(context.Background(), net, input, cfg)
}

// RunBaselineContext is RunBaseline with cancellation: the underlying
// simulation polls ctx and stops early when it fires. On cancellation the
// partial result (cycles and reports for the symbols processed so far) is
// returned together with ctx.Err(); the result is nil only for
// configuration or partitioning errors.
func RunBaselineContext(ctx context.Context, net *automata.Network, input []byte, cfg Config) (*BaselineResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	batches, err := PartitionNFAs(net, cfg.Capacity)
	if err != nil {
		return nil, err
	}
	res, err := sim.RunContext(ctx, net, input, sim.Options{})
	return &BaselineResult{
		Batches: len(batches),
		Cycles:  int64(len(batches)) * res.Symbols,
		Reports: res.NumReports,
		TimeNS:  float64(len(batches)) * float64(res.Symbols) * cfg.CycleNS,
	}, err
}

// BaselineCycles returns the cycle count of the batching model without
// running the simulator (used by sweeps that only need timing).
func BaselineCycles(net *automata.Network, inputLen int, capacity int) (batches int, cycles int64, err error) {
	bs, err := PartitionNFAs(net, capacity)
	if err != nil {
		return 0, 0, err
	}
	return len(bs), int64(len(bs)) * int64(inputLen), nil
}

// Throughput returns symbols per cycle for a run of the given cycle count
// over inputLen symbols.
func Throughput(inputLen int, cycles int64) float64 {
	if cycles == 0 {
		return 0
	}
	return float64(inputLen) / float64(cycles)
}

// PerfPerSTE is the paper's performance-per-STE metric: throughput divided
// by the half-core capacity, a proxy for performance per die area.
func PerfPerSTE(inputLen int, cycles int64, capacity int) float64 {
	return Throughput(inputLen, cycles) / float64(capacity)
}
