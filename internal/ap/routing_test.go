package ap

import (
	"testing"

	"sparseap/internal/automata"
	"sparseap/internal/symset"
)

func TestPlaceAssignsUniqueAddresses(t *testing.T) {
	net := makeNet(10, 10, 10)
	cfg := DefaultConfig().WithCapacity(512)
	pl, err := Place(net, cfg)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[Address]bool{}
	for _, a := range pl.Addr {
		if seen[a] {
			t.Fatalf("duplicate address %+v", a)
		}
		seen[a] = true
	}
	if pl.BlocksUsed < 1 {
		t.Fatal("no blocks used")
	}
}

func TestPlaceOverCapacity(t *testing.T) {
	net := makeNet(100)
	if _, err := Place(net, DefaultConfig().WithCapacity(100).WithCapacity(50)); err == nil {
		t.Fatal("over-capacity placement accepted")
	}
}

func TestPlaceLocality(t *testing.T) {
	// Chains much smaller than a block must never cross blocks (BFS packs
	// each NFA contiguously).
	net := makeNet(8, 8, 8, 8)
	cfg := DefaultConfig().WithCapacity(512) // 2 blocks of 256
	pl, err := Place(net, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if pl.CrossBlockEdges != 0 {
		t.Fatalf("cross-block edges = %d for tiny chains", pl.CrossBlockEdges)
	}
	if pl.IntraBlockEdges != 4*7 {
		t.Fatalf("intra-block edges = %d, want 28", pl.IntraBlockEdges)
	}
	if pl.CrossBlockFraction() != 0 {
		t.Fatal("cross fraction nonzero")
	}
}

func TestPlaceCrossBlockCounted(t *testing.T) {
	// One chain longer than a block must cross at least once.
	m := automata.NewNFA()
	prev := m.Add(symset.Single('a'), automata.StartAllInput, false)
	for i := 1; i < 300; i++ {
		cur := m.Add(symset.Single('a'), automata.StartNone, i == 299)
		m.Connect(prev, cur)
		prev = cur
	}
	net := automata.NewNetwork(m)
	pl, err := Place(net, DefaultConfig().WithCapacity(512))
	if err != nil {
		t.Fatal(err)
	}
	if pl.CrossBlockEdges == 0 {
		t.Fatal("300-state chain placed without crossing a 256-STE block")
	}
	if pl.BlocksUsed != 2 {
		t.Fatalf("blocks used = %d, want 2", pl.BlocksUsed)
	}
}

func TestPlaceCoversUnreachableStates(t *testing.T) {
	m := automata.NewNFA()
	a := m.Add(symset.Single('a'), automata.StartAllInput, true)
	orphan := m.Add(symset.Single('z'), automata.StartNone, false)
	_ = a
	_ = orphan
	net := automata.NewNetwork(m)
	pl, err := Place(net, DefaultConfig().WithCapacity(16))
	if err != nil {
		t.Fatal(err)
	}
	if len(pl.Addr) != 2 || pl.Addr[0] == pl.Addr[1] {
		t.Fatal("orphan state not placed")
	}
}

func TestEnableDecodeSteps(t *testing.T) {
	if EnableDecodeSteps() != 3 {
		t.Fatal("the enable decoder is a three-stage hierarchy")
	}
}

func TestOutputOverheadEmpty(t *testing.T) {
	m := DefaultOutputModel()
	if m.Overhead(nil) != 0 {
		t.Fatal("no reports, no overhead")
	}
	if (OutputModel{}).Overhead([]int64{1, 2}) != 0 {
		t.Fatal("zero-depth model must be inert")
	}
}

func TestOutputOverheadSparseReportsFree(t *testing.T) {
	// Reports far apart drain between events: no stalls.
	m := OutputModel{BufferDepth: 2, DrainCycles: 4}
	if got := m.Overhead([]int64{0, 100, 200}); got != 0 {
		t.Fatalf("overhead = %d, want 0", got)
	}
}

func TestOutputOverheadBurstStalls(t *testing.T) {
	// A dense burst overflows a shallow buffer.
	m := OutputModel{BufferDepth: 2, DrainCycles: 10}
	positions := []int64{0, 1, 2, 3, 4, 5}
	if got := m.Overhead(positions); got == 0 {
		t.Fatal("dense burst produced no stalls")
	}
}

func TestOutputOverheadSamePositionCollapses(t *testing.T) {
	m := OutputModel{BufferDepth: 1, DrainCycles: 100}
	// 10 reports at one position share a vector: equivalent to one report.
	many := m.Overhead([]int64{5, 5, 5, 5, 5, 5, 5, 5, 5, 5})
	one := m.Overhead([]int64{5})
	if many != one {
		t.Fatalf("same-position reports not collapsed: %d vs %d", many, one)
	}
}

func TestOutputOverheadMonotoneInDensity(t *testing.T) {
	m := OutputModel{BufferDepth: 4, DrainCycles: 6}
	dense := make([]int64, 64)
	sparse := make([]int64, 64)
	for i := range dense {
		dense[i] = int64(i)
		sparse[i] = int64(i * 20)
	}
	if m.Overhead(dense) < m.Overhead(sparse) {
		t.Fatal("denser reports should stall at least as much")
	}
}
