package ap

import (
	"fmt"

	"sparseap/internal/automata"
)

// Placement maps a batch's states onto the half-core's hierarchical
// routing matrix (blocks of rows of STEs, Section V-B). Enable signals that
// stay within a block use cheap local wires; edges that cross blocks
// consume the scarcer global routing the AP compiler tries to minimize.
// Place assigns states block-by-block in a BFS order rooted at each NFA's
// start states, which keeps connected neighbourhoods co-located — the same
// locality heuristic the AP's placer applies.
type Placement struct {
	// Addr[i] is the hierarchical address of state i.
	Addr []Address
	// BlocksUsed counts occupied blocks.
	BlocksUsed int
	// IntraBlockEdges and CrossBlockEdges partition the routed edges.
	IntraBlockEdges int
	CrossBlockEdges int
}

// CrossBlockFraction returns the share of edges needing global routing.
func (p *Placement) CrossBlockFraction() float64 {
	total := p.IntraBlockEdges + p.CrossBlockEdges
	if total == 0 {
		return 0
	}
	return float64(p.CrossBlockEdges) / float64(total)
}

// Place assigns every state of net a block/row/STE address on one
// half-core. It fails if the network exceeds the capacity.
func Place(net *automata.Network, cfg Config) (*Placement, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if net.Len() > cfg.Capacity {
		return nil, fmt.Errorf("ap: %d states exceed capacity %d", net.Len(), cfg.Capacity)
	}
	order := bfsOrder(net)
	pl := &Placement{Addr: make([]Address, net.Len())}
	for slot, s := range order {
		a, err := cfg.AddressOf(slot)
		if err != nil {
			return nil, err
		}
		pl.Addr[s] = a
	}
	blocks := map[int]bool{}
	for s := 0; s < net.Len(); s++ {
		blocks[pl.Addr[s].Block] = true
		for _, v := range net.States[s].Succ {
			if pl.Addr[s].Block == pl.Addr[v].Block {
				pl.IntraBlockEdges++
			} else {
				pl.CrossBlockEdges++
			}
		}
	}
	pl.BlocksUsed = len(blocks)
	return pl, nil
}

// bfsOrder returns the states in per-NFA BFS order from start states,
// appending any unreached states at the end of their NFA's run.
func bfsOrder(net *automata.Network) []automata.StateID {
	order := make([]automata.StateID, 0, net.Len())
	seen := make([]bool, net.Len())
	var queue []automata.StateID
	for nfa := 0; nfa < net.NumNFAs(); nfa++ {
		lo, hi := net.NFAStates(nfa)
		queue = queue[:0]
		for s := lo; s < hi; s++ {
			if net.States[s].Start != automata.StartNone {
				seen[s] = true
				queue = append(queue, s)
			}
		}
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			order = append(order, u)
			for _, v := range net.States[u].Succ {
				if !seen[v] {
					seen[v] = true
					queue = append(queue, v)
				}
			}
		}
		for s := lo; s < hi; s++ {
			if !seen[s] {
				seen[s] = true
				order = append(order, s)
			}
		}
	}
	return order
}

// EnableDecodeSteps returns the decoder activations the SpAP enable
// operation performs for one 16-bit state ID: block select (7×128 in the
// paper's full-size hierarchy), row select (4×16), and STE select (4×16).
// The constant 3 documents the three-stage pipeline; it is exposed so
// tests can anchor the hardware description of Section V-B.
func EnableDecodeSteps() int { return 3 }
