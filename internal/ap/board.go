package ap

import (
	"fmt"

	"sparseap/internal/automata"
)

// Board models rank-level parallelism: a D480 chip carries two half-cores
// and boards carry many chips, all consuming the same input broadcast.
// Batches therefore execute HalfCores at a time — the baseline's
// re-execution cost shrinks by the board width, while per-half-core
// capacity (and the half-core NFA containment rule) is unchanged.
type Board struct {
	// HalfCore is the per-half-core configuration.
	HalfCore Config
	// HalfCores is the number of half-cores sharing the input broadcast.
	HalfCores int
}

// DefaultBoard returns a single chip (two half-cores) at the scaled
// half-core configuration.
func DefaultBoard() Board {
	return Board{HalfCore: DefaultConfig(), HalfCores: 2}
}

// Validate checks the board description.
func (b Board) Validate() error {
	if err := b.HalfCore.Validate(); err != nil {
		return err
	}
	if b.HalfCores <= 0 {
		return fmt.Errorf("ap: board needs at least one half-core")
	}
	return nil
}

// Rounds returns how many input re-executions a batch sequence costs on
// this board: batches run HalfCores at a time.
func (b Board) Rounds(batches int) int {
	return (batches + b.HalfCores - 1) / b.HalfCores
}

// BaselineCycles returns the board-level baseline cycle count: rounds of
// batches, each streaming the entire input once.
func (b Board) BaselineCycles(net *automata.Network, inputLen int) (rounds int, cycles int64, err error) {
	if err := b.Validate(); err != nil {
		return 0, 0, err
	}
	batches, err := PartitionNFAs(net, b.HalfCore.Capacity)
	if err != nil {
		return 0, 0, err
	}
	rounds = b.Rounds(len(batches))
	return rounds, int64(rounds) * int64(inputLen), nil
}
