package lint

import (
	"strings"
	"testing"

	"sparseap/internal/automata"
	"sparseap/internal/symset"
)

// semNet builds a network exercising every semantic analyzer:
//
//	s0 start(a-z) ─→ gap(∅-under-alphabet: '!') ─→ tail(q, report)
//	s0 ─→ subA(b) ─→ rep(x, report)
//	s0 ─→ subB(a-c) ─→ rep
//
// Under alphabet a–z: gap never fires (AP020 edge from s0, AP017 on
// nothing — gap's match∩A is empty so AP003-adjacent exclusion applies),
// tail is structurally reachable but never fires (AP017 for non-report /
// AP019 if reporting), and subA is subsumed by subB (AP018).
func semNet() *automata.Network {
	m := automata.NewNFA()
	s0 := m.Add(symset.Range('a', 'z'), automata.StartAllInput, false)
	gap := m.Add(symset.Single('!'), automata.StartNone, false)
	tail := m.Add(symset.Single('q'), automata.StartNone, true)
	subA := m.Add(symset.Single('b'), automata.StartNone, false)
	subB := m.Add(symset.Range('a', 'c'), automata.StartNone, false)
	rep := m.Add(symset.Single('x'), automata.StartNone, true)
	m.Connect(s0, gap)
	m.Connect(gap, tail)
	m.Connect(s0, subA)
	m.Connect(s0, subB)
	m.Connect(subA, rep)
	m.Connect(subB, rep)
	return automata.NewNetwork(m)
}

func codesOf(res *Result) map[string]int {
	m := map[string]int{}
	for _, d := range res.Diags {
		m[d.Code]++
	}
	return m
}

func TestSemanticAnalyzersUnderAlphabet(t *testing.T) {
	net := semNet()
	res := Run(net, Options{Alphabet: symset.Range('a', 'z')})
	counts := codesOf(res)
	if counts["AP019"] != 1 {
		t.Errorf("AP019 = %d, want 1 (the unsatisfiable reporting tail)", counts["AP019"])
	}
	if counts["AP018"] != 1 {
		t.Errorf("AP018 = %d, want 1 (subA subsumed by subB)", counts["AP018"])
	}
	if counts["AP020"] != 1 {
		t.Errorf("AP020 = %d, want 1 (edge into the '!' state)", counts["AP020"])
	}
	// The '!' state itself is excluded from AP017 (its match is empty
	// under the alphabet — the alphabet-level AP003 analogue), and the
	// tail is AP019's, so AP017 stays quiet here.
	if counts["AP017"] != 0 {
		t.Errorf("AP017 = %d, want 0", counts["AP017"])
	}
}

func TestSemanticQuietUnderFullAlphabet(t *testing.T) {
	// Under the full alphabet the '!' branch fires fine: no semantic
	// findings beyond the structural ones.
	net := semNet()
	res := Run(net, Options{})
	counts := codesOf(res)
	for _, code := range []string{"AP017", "AP019", "AP020"} {
		if counts[code] != 0 {
			t.Errorf("%s = %d, want 0 under the full alphabet", code, counts[code])
		}
	}
}

func TestAP017StructurallyReachableOnly(t *testing.T) {
	// A state behind an empty-match state is structurally reachable but
	// can never fire — AP017's exact territory (its own match is fine).
	m := automata.NewNFA()
	s0 := m.Add(symset.Single('a'), automata.StartAllInput, false)
	gap := m.Add(symset.Empty(), automata.StartNone, false)
	mid := m.Add(symset.Single('c'), automata.StartNone, false)
	rep := m.Add(symset.Single('d'), automata.StartNone, true)
	m.Connect(s0, gap)
	m.Connect(gap, mid)
	m.Connect(mid, rep)
	net := automata.NewNetwork(m)
	res := Run(net, Options{})
	counts := codesOf(res)
	if counts["AP017"] != 1 {
		t.Errorf("AP017 = %d, want 1 (mid)", counts["AP017"])
	}
	if counts["AP019"] != 1 {
		t.Errorf("AP019 = %d, want 1 (rep)", counts["AP019"])
	}
	var found bool
	for _, d := range res.Diags {
		if d.Code == "AP017" && d.State == mid {
			found = true
		}
	}
	if !found {
		t.Error("AP017 should point at the state behind the empty-match gap")
	}
}

func TestAP021CutCostOnOversizedNFA(t *testing.T) {
	// A 6-state chain with capacity 4: oversized, and the cheapest cut
	// cost must be reported as an Info diagnostic.
	m := automata.NewNFA()
	prev := m.Add(symset.Range('a', 'd'), automata.StartAllInput, false)
	for i := 0; i < 5; i++ {
		next := m.Add(symset.Range('a', 'd'), automata.StartNone, i == 4)
		m.Connect(prev, next)
		prev = next
	}
	net := automata.NewNetwork(m)
	res := Run(net, Options{Capacity: 4})
	var diag *Diagnostic
	for i := range res.Diags {
		if res.Diags[i].Code == "AP021" {
			diag = &res.Diags[i]
		}
	}
	if diag == nil {
		t.Fatalf("no AP021 diagnostic; got %v", res.Diags)
	}
	if !strings.Contains(diag.Msg, "crossings/symbol") {
		t.Errorf("AP021 message missing cost estimate: %s", diag.Msg)
	}
	// With capacity covering the whole NFA there is nothing to report.
	res = Run(net, Options{Capacity: 100})
	if codesOf(res)["AP021"] != 0 {
		t.Error("AP021 must stay quiet when the NFA fits")
	}
}

func TestAP022OversizedFitsAfterRewrite(t *testing.T) {
	// Five identical chains in one NFA: 15 states, capacity 8. Merging
	// folds them to 3 states, which fits.
	m := automata.NewNFA()
	for c := 0; c < 5; c++ {
		s0 := m.Add(symset.Single('a'), automata.StartAllInput, false)
		s1 := m.Add(symset.Single('b'), automata.StartNone, false)
		s2 := m.Add(symset.Single('c'), automata.StartNone, false)
		m.Connect(s0, s1)
		m.Connect(s1, s2)
	}
	// One shared reporting sink keeps the chains live and in one NFA.
	rep := m.Add(symset.Single('d'), automata.StartNone, true)
	for c := 0; c < 5; c++ {
		m.Connect(automata.StateID(c*3+2), rep)
	}
	net := automata.NewNetwork(m)
	res := Run(net, Options{Capacity: 8})
	if codesOf(res)["AP022"] != 1 {
		t.Fatalf("AP022 = %d, want 1; diags: %v", codesOf(res)["AP022"], res.Diags)
	}
}

func TestErrAtThresholds(t *testing.T) {
	net := semNet()
	res := Run(net, Options{Alphabet: symset.Range('a', 'z')})
	if res.Err() != nil {
		t.Fatalf("no errors expected, got %v", res.Err())
	}
	err := res.ErrAt(Warning)
	if err == nil {
		t.Fatal("ErrAt(Warning) should report the warnings")
	}
	// The count in the error must match the summary's warning+error count.
	warnPlus := res.Count(Warning) + res.Count(Error)
	if warnPlus < 2 && strings.Contains(err.Error(), "more findings") {
		t.Errorf("ErrAt count inconsistent with summary: %v vs %d findings", err, warnPlus)
	}
	if res.ErrAt(Info) == nil {
		t.Error("ErrAt(Info) should report everything")
	}
}
