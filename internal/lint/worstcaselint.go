// Worst-case analyzers AP025–AP026: findings derived from the certified
// worst-case frontier analysis (internal/worstcase) — the static bound on
// how wide the sparse frontier can ever get, and the adversarial witness
// that measures how tight that bound is.
package lint

import (
	"fmt"
)

// Lint-sized worstcase budgets: the analyzers trade bound tightness for
// speed, since a lint run covers whole suites. The bound stays sound at
// any budget; only the gap diagnostic gets noisier.
const (
	lintGramBudget      = 8 << 20
	lintWitnessLen      = 256
	lintWitnessTopK     = 4
	lintWitnessPatience = 64
)

// worstFrontierFractionThreshold is the worst-case frontier fraction at
// or above which AP025 reports: when an adversarial input can enable
// half of all trackable states at once, sparse frontier tracking cannot
// be provisioned below dense, and admission control must charge the
// dense footprint.
const worstFrontierFractionThreshold = 0.5

// gapRatioThreshold is the certified bound/witness gap at or above which
// AP026 reports. The lint-budget witness is deliberately weak, so the
// threshold is generous; gaps past it usually mean mutually-exclusive
// structure the per-NFA analysis cannot see (cross-NFA exclusivity) or
// an input language too narrow for the greedy synthesizer.
const gapRatioThreshold = 8.0

func init() {
	Register(analyzerWorstFrontier)
	Register(analyzerWitnessGap)
}

var analyzerWorstFrontier = &Analyzer{
	Code:       "AP025",
	Name:       "worstcase-frontier-fraction",
	Doc:        "worst-case frontier width as a fraction of trackable states, from the certified static bound; reported when so high that sparse tracking cannot beat dense provisioning",
	Default:    Info,
	NeedsSound: true,
	Run: func(p *Pass, a *Analyzer) []Diagnostic {
		if p.Net.Len() == 0 {
			return nil
		}
		wc := p.WorstCase()
		frac := wc.FrontierFraction()
		if frac < worstFrontierFractionThreshold {
			return nil
		}
		return []Diagnostic{{
			Code: a.Code, Severity: a.Default, NFA: -1, State: -1,
			Msg: fmt.Sprintf("worst-case input can enable %d of %d trackable states at once (%.0f%%, threshold %.0f%%): size frontier buffers and admission for the dense case",
				wc.FrontierBound, wc.Trackable, frac*100, worstFrontierFractionThreshold*100),
			Fix: "provision with the dense kernel or charge worst-case footprints at admission; tighten the input alphabet if real traffic is narrower",
		}}
	},
}

var analyzerWitnessGap = &Analyzer{
	Code:       "AP026",
	Name:       "worstcase-witness-gap",
	Doc:        "ratio between the static worst-case frontier bound and the widest frontier an adversarial witness input actually reaches in the engine; reported when the bound is far from demonstrably tight",
	Default:    Info,
	NeedsSound: true,
	Run: func(p *Pass, a *Analyzer) []Diagnostic {
		if p.Net.Len() == 0 || p.WorstCase().FrontierBound == 0 {
			return nil
		}
		_, rep := p.WorstCaseWitness()
		if !rep.Sound {
			// The engine out-ran the static bound: an analysis bug, never
			// an input property. Surface it as loudly as the linter can.
			return []Diagnostic{{
				Code: a.Code, Severity: Error, NFA: -1, State: -1,
				Msg: fmt.Sprintf("witness replay reached frontier %d, above the static bound %d: the worst-case analysis is unsound for this network",
					rep.PeakFrontier, p.WorstCase().FrontierBound),
			}}
		}
		if rep.PeakFrontier == 0 || rep.Gap < gapRatioThreshold {
			return nil
		}
		return []Diagnostic{{
			Code: a.Code, Severity: a.Default, NFA: -1, State: -1,
			Msg: fmt.Sprintf("static frontier bound %d but the best synthesized witness only reaches %d (gap %.1f×, threshold %.1f×): the bound is certified sound but not demonstrably tight",
				p.WorstCase().FrontierBound, rep.PeakFrontier, rep.Gap, gapRatioThreshold),
			Fix: "treat the bound as conservative when sizing; a larger witness budget (apstat -worstcase) or cross-NFA exclusivity reasoning may close the gap",
		}}
	},
}
