package lint

import (
	"strings"
	"testing"

	"sparseap/internal/automata"
	"sparseap/internal/symset"
)

// denseNet builds a network of wide all-input matchers: the static
// analysis predicts every state hot.
func denseNet(states int) *automata.Network {
	m := automata.NewNFA()
	var prev automata.StateID
	for i := 0; i < states; i++ {
		s := m.Add(symset.Range(0, 250), automata.StartAllInput, i == states-1)
		if i > 0 {
			m.Connect(prev, s)
		}
		prev = s
	}
	return automata.NewNetwork(m)
}

// sparseNet builds a deep chain of single-symbol matchers: beyond the
// head, predicted activity decays geometrically and the tail is cold.
func sparseNet(states int) *automata.Network {
	m := automata.NewNFA()
	var prev automata.StateID
	for i := 0; i < states; i++ {
		s := m.Add(symset.Single(byte('a'+i%20)), automata.StartNone, i == states-1)
		if i == 0 {
			s = m.Add(symset.Single('a'), automata.StartAllInput, false)
		}
		if i > 0 {
			m.Connect(prev, s)
		}
		prev = s
	}
	return automata.NewNetwork(m)
}

func TestAP023FiresOnDenseNetwork(t *testing.T) {
	res := Run(denseNet(10), Options{Enable: []string{"AP023"}})
	codes := codesOf(res)
	if codes["AP023"] != 1 {
		t.Fatalf("AP023 count = %d, want 1; diags: %v", codes["AP023"], res.Diags)
	}
	d := res.Diags[0]
	if d.Severity != Info || d.NFA != -1 {
		t.Errorf("AP023 diag = %+v, want network-level Info", d)
	}
	if !strings.Contains(d.Msg, "hot") {
		t.Errorf("AP023 msg %q lacks hot fraction", d.Msg)
	}

	// A network that fits whole in the half-core is never partitioned, so
	// the "partitioning won't pay" note would be noise.
	res = Run(denseNet(10), Options{Enable: []string{"AP023"}, Capacity: 100})
	if n := codesOf(res)["AP023"]; n != 0 {
		t.Errorf("AP023 fired %d times though the network fits in capacity", n)
	}
}

func TestAP023QuietOnSparseNetwork(t *testing.T) {
	res := Run(sparseNet(30), Options{Enable: []string{"AP023"}})
	if n := codesOf(res)["AP023"]; n != 0 {
		t.Fatalf("AP023 fired %d times on a cold-tailed chain", n)
	}
}

func TestAP024ReportsStaticCutForOversizedNFA(t *testing.T) {
	net := sparseNet(30)
	// Capacity below the NFA size forces a partition; AP024 must report
	// the predicted cut.
	res := Run(net, Options{Enable: []string{"AP024"}, Capacity: 10})
	codes := codesOf(res)
	if codes["AP024"] != 1 {
		t.Fatalf("AP024 count = %d, want 1; diags: %v", codes["AP024"], res.Diags)
	}
	d := res.Diags[0]
	if d.NFA != 0 || d.Severity != Info {
		t.Errorf("AP024 diag = %+v, want NFA 0 Info", d)
	}
	if !strings.Contains(d.Msg, "partition layer k=") {
		t.Errorf("AP024 msg %q lacks predicted layer", d.Msg)
	}

	// Without capacity pressure the analyzer is silent.
	res = Run(net, Options{Enable: []string{"AP024"}})
	if n := codesOf(res)["AP024"]; n != 0 {
		t.Errorf("AP024 fired %d times with Capacity unset", n)
	}
	res = Run(net, Options{Enable: []string{"AP024"}, Capacity: 100})
	if n := codesOf(res)["AP024"]; n != 0 {
		t.Errorf("AP024 fired %d times though the NFA fits", n)
	}
}

func TestHotnessMemoized(t *testing.T) {
	p := &Pass{Net: denseNet(5)}
	if p.Hotness() != p.Hotness() {
		t.Error("Pass.Hotness not memoized")
	}
}
