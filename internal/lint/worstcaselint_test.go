package lint

import (
	"strings"
	"testing"

	"sparseap/internal/automata"
	"sparseap/internal/symset"
)

// saturatingNet builds NFAs whose worst case is trivially reachable: an
// all-input star feeding a chain of all-byte matchers, so one long input
// keeps every trackable state enabled — frontier fraction 1.0, witness
// gap exactly 1.0.
func saturatingNet(nfas, depth int) *automata.Network {
	ms := make([]*automata.NFA, nfas)
	for i := range ms {
		m := automata.NewNFA()
		star := m.Add(symset.All(), automata.StartAllInput, false)
		m.Connect(star, star)
		prev := star
		for d := 0; d < depth; d++ {
			s := m.Add(symset.All(), automata.StartNone, d == depth-1)
			m.Connect(prev, s)
			prev = s
		}
		ms[i] = m
	}
	return automata.NewNetwork(ms...)
}

// exclusiveNet builds a worst case the witness cannot reach and the
// analysis cannot rule out: each NFA's trigger is a distinct byte, but
// the trigger sits more than maxGram symbols behind the wide part of the
// automaton (a long 'z' chain into a fanout), so the k-gram window never
// sees that at most a few triggers fit in any real history — cross-NFA
// exclusivity beyond the suffix horizon.
func exclusiveNet(nfas, depth, fanout int) *automata.Network {
	ms := make([]*automata.NFA, nfas)
	for i := range ms {
		m := automata.NewNFA()
		head := m.Add(symset.Single(byte(i)), automata.StartAllInput, false)
		prev := head
		for d := 0; d < depth; d++ {
			s := m.Add(symset.Single('z'), automata.StartNone, false)
			m.Connect(prev, s)
			prev = s
		}
		for f := 0; f < fanout; f++ {
			s := m.Add(symset.Single('z'), automata.StartNone, true)
			m.Connect(prev, s)
		}
		ms[i] = m
	}
	return automata.NewNetwork(ms...)
}

func TestAP025FiresOnSaturatingNetwork(t *testing.T) {
	res := Run(saturatingNet(3, 8), Options{Enable: []string{"AP025"}})
	codes := codesOf(res)
	if codes["AP025"] != 1 {
		t.Fatalf("AP025 count = %d, want 1; diags: %v", codes["AP025"], res.Diags)
	}
	d := res.Diags[0]
	if d.Severity != Info || d.NFA != -1 {
		t.Errorf("AP025 diag = %+v, want network-level Info", d)
	}
	if !strings.Contains(d.Msg, "trackable states") {
		t.Errorf("AP025 msg %q lacks frontier fraction", d.Msg)
	}
}

func TestAP025QuietOnSparseNetwork(t *testing.T) {
	res := Run(sparseNet(30), Options{Enable: []string{"AP025"}})
	if n := codesOf(res)["AP025"]; n != 0 {
		t.Fatalf("AP025 fired %d times on a cold-tailed chain: %v", n, res.Diags)
	}
}

// TestAP026QuietWhenGapIsOne is the negative case: on a saturating
// network the witness reaches the bound exactly (gap 1.0), so the gap
// analyzer must stay silent.
func TestAP026QuietWhenGapIsOne(t *testing.T) {
	p := &Pass{Net: saturatingNet(3, 8), Opts: Options{Enable: []string{"AP026"}}}
	res := run(p, false)
	if n := codesOf(res)["AP026"]; n != 0 {
		t.Fatalf("AP026 fired %d times at gap 1.0: %v", n, res.Diags)
	}
	_, rep := p.WorstCaseWitness()
	if !rep.Sound || rep.Gap != 1.0 {
		t.Fatalf("saturating net: sound=%v gap=%v, want sound gap 1.0", rep.Sound, rep.Gap)
	}
}

func TestAP026FiresOnLooseBound(t *testing.T) {
	net := exclusiveNet(60, 12, 8)
	p := &Pass{Net: net, Opts: Options{Enable: []string{"AP026"}}}
	res := run(p, false)
	codes := codesOf(res)
	if codes["AP026"] != 1 {
		_, rep := p.WorstCaseWitness()
		t.Fatalf("AP026 count = %d, want 1 (bound %d, witness %d, gap %.2f); diags: %v",
			codes["AP026"], p.WorstCase().FrontierBound, rep.PeakFrontier, rep.Gap, res.Diags)
	}
	d := res.Diags[0]
	if d.Severity != Info || d.NFA != -1 {
		t.Errorf("AP026 diag = %+v, want network-level Info", d)
	}
	if !strings.Contains(d.Msg, "gap") {
		t.Errorf("AP026 msg %q lacks the gap ratio", d.Msg)
	}
}

func TestWorstCaseMemoized(t *testing.T) {
	p := &Pass{Net: saturatingNet(1, 4)}
	if p.WorstCase() != p.WorstCase() {
		t.Error("Pass.WorstCase not memoized")
	}
	w1, r1 := p.WorstCaseWitness()
	w2, r2 := p.WorstCaseWitness()
	if w1 != w2 || r1 != r2 {
		t.Error("Pass.WorstCaseWitness not memoized")
	}
}
