package lint

import (
	"fmt"
	"sort"

	"sparseap/internal/automata"
	"sparseap/internal/bitvec"
	"sparseap/internal/graph"
	"sparseap/internal/symset"
)

// PartitionInfo is the lint-facing view of a hot/cold partition (Section
// IV-C). It mirrors the fields of hotcold.Partition; hotcold constructs it
// (Partition.LintInfo) because this package cannot import hotcold without
// creating an import cycle — hotcold.CheckInvariants is a thin wrapper over
// RunPartition.
type PartitionInfo struct {
	// Net is the original, unpartitioned network.
	Net *automata.Network
	// Topo is the topological analysis the partition was derived from.
	Topo *graph.Topo
	// PredHot marks the predicted-hot original states.
	PredHot *bitvec.Vec
	// Hot is the BaseAP-mode network (hot fragments + intermediates).
	Hot *automata.Network
	// HotOrig maps hot-network IDs to original IDs (None = intermediate).
	HotOrig []automata.StateID
	// Intermediate maps hot-network intermediate reporting states to the
	// original cold state each stands for.
	Intermediate map[automata.StateID]automata.StateID
	// Cold is the SpAP-mode network.
	Cold *automata.Network
	// ColdOrig maps cold-network IDs to original IDs.
	ColdOrig []automata.StateID
	// ColdID maps original IDs to cold-network IDs (None when hot).
	ColdID []automata.StateID
}

// DefaultReportBudget is the intermediate-report density — reports per
// input symbol — above which a partition is considered storm-prone: PEN's
// measured density of ~2.6 sits orders of magnitude above it while every
// healthy suite application stays below ~0.06. It is the shared threshold
// of the AP016 analyzer (static prediction) and the spap runtime guard
// (dynamic watchdog); lint owns it so both layers agree without an import
// cycle.
const DefaultReportBudget = 0.15

// This file registers the partition analyzers (AP011–AP015 and the AP016
// report-density heuristic), which verify the structural guarantees of
// Section IV-C that the BaseAP/SpAP executor relies on.

func init() {
	Register(analyzerColdHotEdge)
	Register(analyzerSCCSplit)
	Register(analyzerColdStart)
	Register(analyzerIntermediate)
	Register(analyzerFragmentMaps)
	Register(analyzerReportDensity)
}

// analyzerReportDensity (AP016) statically predicts a partition's
// intermediate-report density and warns when it exceeds the report budget
// the runtime guard enforces dynamically. Profiling-input replay cannot
// predict storms — by hot-set monotonicity the profiling input produces
// zero intermediate reports — so the heuristic is structural: activation
// probability is propagated through the hot network in topological order
// under a uniform-symbol model over the live alphabet (the union of the
// hot states' match sets; symbols no state matches cannot drive
// activations and would only dilute the estimate):
//
//	p_act(s) = p_en(s) * |Match(s)| / |alphabet|
//	p_en(s)  = 1 for start states, else min(1, sum of parent p_act)
//
// The predicted density is the sum of p_act over the intermediate
// reporting states, in expected reports per input symbol. Storm-prone
// partitions (PEN-like cores whose cut sits below a high-fanout choke
// point) land orders of magnitude above the budget; healthy suite
// partitions land well below it.
var analyzerReportDensity = &Analyzer{
	Code:           "AP016",
	Name:           "report-density",
	Doc:            "the predicted intermediate-report density exceeds the report budget: the partition is storm-prone and SpAP-mode enable stalls may erase the speedup",
	Default:        Warning,
	NeedsPartition: true,
	Run: func(p *Pass, a *Analyzer) []Diagnostic {
		pi := p.Part
		budget := p.Opts.ReportBudget
		if budget <= 0 {
			budget = DefaultReportBudget
		}
		var alphabet symset.Set
		for i := range pi.Hot.States {
			alphabet = alphabet.Union(pi.Hot.States[i].Match)
		}
		live := alphabet.Len()
		if live == 0 {
			return nil
		}
		n := pi.Hot.Len()
		topo := graph.TopoOrder(pi.Hot)
		order := make([]automata.StateID, n)
		for i := range order {
			order[i] = automata.StateID(i)
		}
		sort.Slice(order, func(i, j int) bool {
			return topo.Order[order[i]] < topo.Order[order[j]]
		})
		enAcc := make([]float64, n) // sum of parent p_act, before capping
		pAct := make([]float64, n)
		for _, s := range order {
			st := pi.Hot.States[s]
			pEn := enAcc[s]
			if pEn > 1 {
				pEn = 1
			}
			if st.Start != automata.StartNone {
				pEn = 1
			}
			pAct[s] = pEn * float64(st.Match.Len()) / float64(live)
			for _, t := range st.Succ {
				enAcc[t] += pAct[s]
			}
		}
		density := 0.0
		for iv := range pi.Intermediate {
			density += pAct[iv]
		}
		if density <= budget {
			return nil
		}
		return []Diagnostic{{Code: a.Code, Severity: Warning,
			NFA: -1, State: automata.None,
			Msg: fmt.Sprintf("predicted intermediate-report density %.3f reports/symbol exceeds the %.2f budget (%d intermediates, %d-symbol live alphabet)",
				density, budget, len(pi.Intermediate), live),
			Fix: "widen the partition layer k, raise the profiling fraction, or execute under the adaptive guard (RunGuarded)"}}
	},
}

var analyzerColdHotEdge = &Analyzer{
	Code:           "AP011",
	Name:           "cold-hot-edge",
	Doc:            "an original edge runs from a predicted-cold state to a predicted-hot one, violating the unidirectional cut",
	Default:        Error,
	NeedsPartition: true,
	Run: func(p *Pass, a *Analyzer) []Diagnostic {
		var out []Diagnostic
		pi := p.Part
		for u := 0; u < pi.Net.Len(); u++ {
			if pi.PredHot.Get(u) {
				continue
			}
			for _, v := range pi.Net.States[u].Succ {
				if pi.PredHot.Get(int(v)) {
					out = append(out, p.stateDiag(a, Error, automata.StateID(u),
						fmt.Sprintf("cold->hot edge %d->%d crosses the partition cut backwards", u, v),
						"partition at topological layers so the cut is unidirectional"))
				}
			}
		}
		return out
	},
}

var analyzerSCCSplit = &Analyzer{
	Code:           "AP012",
	Name:           "scc-split",
	Doc:            "a strongly connected component is split across the hot/cold boundary; SCCs must land on one side atomically",
	Default:        Error,
	NeedsPartition: true,
	Run: func(p *Pass, a *Analyzer) []Diagnostic {
		var out []Diagnostic
		pi := p.Part
		scc := pi.Topo.SCC
		side := make(map[int32]bool)
		seen := make(map[int32]bool)
		flagged := make(map[int32]bool)
		for s := 0; s < pi.Net.Len(); s++ {
			c := scc.Comp[s]
			hot := pi.PredHot.Get(s)
			switch {
			case !seen[c]:
				seen[c] = true
				side[c] = hot
			case side[c] != hot && !flagged[c]:
				flagged[c] = true
				out = append(out, p.stateDiag(a, Error, automata.StateID(s),
					fmt.Sprintf("SCC %d (size %d) is split across the partition", c, scc.Size[c]),
					"cut at a topological layer of the SCC condensation"))
			}
		}
		return out
	},
}

var analyzerColdStart = &Analyzer{
	Code:           "AP013",
	Name:           "cold-start",
	Doc:            "a start state is predicted cold: the cold network would be self-enabled, which the SpAP jump operation forbids",
	Default:        Error,
	NeedsPartition: true,
	Run: func(p *Pass, a *Analyzer) []Diagnostic {
		var out []Diagnostic
		pi := p.Part
		for s := 0; s < pi.Net.Len(); s++ {
			if pi.Net.States[s].Start != automata.StartNone && !pi.PredHot.Get(s) {
				out = append(out, p.stateDiag(a, Error, automata.StateID(s),
					"start state predicted cold",
					"start states are always enabled; keep every layer-1 state hot"))
			}
		}
		// Defense in depth: the materialized cold network must agree.
		for c := range pi.Cold.States {
			if pi.Cold.States[c].Start != automata.StartNone {
				d := Diagnostic{Code: a.Code, Severity: Error,
					NFA: -1, State: automata.None,
					Msg: fmt.Sprintf("cold-network state %d is self-enabled", c)}
				if c < len(pi.ColdOrig) {
					d.Msg += fmt.Sprintf(" (original state %d)", pi.ColdOrig[c])
				}
				out = append(out, d)
			}
		}
		return out
	},
}

var analyzerIntermediate = &Analyzer{
	Code:           "AP014",
	Name:           "intermediate",
	Doc:            "an intermediate reporting state is inconsistent with the cold target it stands for (symbol set, report flag, successors, or translation)",
	Default:        Error,
	NeedsPartition: true,
	Run: func(p *Pass, a *Analyzer) []Diagnostic {
		var out []Diagnostic
		pi := p.Part
		bad := func(iv automata.StateID, msg string) {
			out = append(out, Diagnostic{Code: a.Code, Severity: Error,
				NFA: -1, State: automata.None,
				Msg: fmt.Sprintf("intermediate state %d %s", iv, msg)})
		}
		for iv, target := range pi.Intermediate {
			if int(iv) >= pi.Hot.Len() {
				bad(iv, fmt.Sprintf("outside the hot network (%d states)", pi.Hot.Len()))
				continue
			}
			st := pi.Hot.States[iv]
			if !st.Report {
				bad(iv, "is not a reporting state")
			}
			if len(st.Succ) != 0 {
				bad(iv, fmt.Sprintf("has %d successors; intermediates must be sinks", len(st.Succ)))
			}
			if int(target) >= pi.Net.Len() {
				bad(iv, fmt.Sprintf("targets state %d outside the network", target))
				continue
			}
			if !st.Match.Equal(pi.Net.States[target].Match) {
				bad(iv, fmt.Sprintf("symbol set %s differs from target %d's %s",
					st.Match, target, pi.Net.States[target].Match))
			}
			if pi.PredHot.Get(int(target)) {
				bad(iv, fmt.Sprintf("targets predicted-hot state %d; intermediates stand for cold states", target))
			} else if pi.ColdID[target] == automata.None {
				bad(iv, fmt.Sprintf("target %d is missing from the cold fragment", target))
			}
		}
		return out
	},
}

var analyzerFragmentMaps = &Analyzer{
	Code:           "AP015",
	Name:           "fragment-maps",
	Doc:            "the hot/cold fragment maps (HotOrig, ColdOrig, ColdID) are not mutually consistent bijections",
	Default:        Error,
	NeedsPartition: true,
	Run: func(p *Pass, a *Analyzer) []Diagnostic {
		var out []Diagnostic
		pi := p.Part
		netDiag := func(msg string) {
			out = append(out, Diagnostic{Code: a.Code, Severity: Error,
				NFA: -1, State: automata.None, Msg: msg})
		}
		if len(pi.HotOrig) != pi.Hot.Len() {
			netDiag(fmt.Sprintf("HotOrig has %d entries for %d hot states", len(pi.HotOrig), pi.Hot.Len()))
			return out
		}
		if len(pi.ColdOrig) != pi.Cold.Len() {
			netDiag(fmt.Sprintf("ColdOrig has %d entries for %d cold states", len(pi.ColdOrig), pi.Cold.Len()))
			return out
		}
		if len(pi.ColdID) != pi.Net.Len() {
			netDiag(fmt.Sprintf("ColdID has %d entries for %d original states", len(pi.ColdID), pi.Net.Len()))
			return out
		}
		hotCount := 0
		for h, g := range pi.HotOrig {
			if g == automata.None {
				if _, ok := pi.Intermediate[automata.StateID(h)]; !ok {
					netDiag(fmt.Sprintf("hot state %d has no original and no translation entry", h))
				}
				continue
			}
			hotCount++
			if int(g) >= pi.Net.Len() {
				netDiag(fmt.Sprintf("hot state %d maps to out-of-range original %d", h, g))
				continue
			}
			if !pi.PredHot.Get(int(g)) {
				netDiag(fmt.Sprintf("hot fragment contains predicted-cold original %d", g))
			}
		}
		if hotCount != pi.PredHot.Count() {
			netDiag(fmt.Sprintf("hot fragment has %d originals, but %d states are predicted hot",
				hotCount, pi.PredHot.Count()))
		}
		for c, g := range pi.ColdOrig {
			if int(g) >= pi.Net.Len() {
				netDiag(fmt.Sprintf("cold state %d maps to out-of-range original %d", c, g))
				continue
			}
			if pi.PredHot.Get(int(g)) {
				netDiag(fmt.Sprintf("cold fragment contains predicted-hot original %d", g))
			}
			if pi.ColdID[g] != automata.StateID(c) {
				netDiag(fmt.Sprintf("ColdID inverse broken: ColdID[%d]=%d, want %d", g, pi.ColdID[g], c))
			}
		}
		return out
	},
}
