package lint

import (
	"fmt"
	"sort"

	"sparseap/internal/automata"
	"sparseap/internal/symset"
)

// This file registers the network analyzers (AP001–AP010). Partition
// analyzers (AP011–AP015) live in partition.go.

func init() {
	Register(analyzerStructure)
	Register(analyzerNoStart)
	Register(analyzerEmptySymset)
	Register(analyzerDuplicateEdge)
	Register(analyzerUnreachable)
	Register(analyzerDeadEnd)
	Register(analyzerStartNoReport)
	Register(analyzerStartKind)
	Register(analyzerCapacity)
	Register(analyzerRedundant)
}

// problemDiags converts the shared automata.Problem findings with the given
// kinds into diagnostics for analyzer a.
func problemDiags(p *Pass, a *Analyzer, want func(automata.ProblemKind) bool) []Diagnostic {
	var out []Diagnostic
	for _, pr := range p.Problems() {
		if !want(pr.Kind) {
			continue
		}
		out = append(out, Diagnostic{
			Code: a.Code, Severity: a.Default,
			NFA: pr.NFA, State: pr.State, Msg: pr.Msg,
		})
	}
	return out
}

var analyzerStructure = &Analyzer{
	Code:    "AP001",
	Name:    "structure",
	Doc:     "network shape is broken: out-of-range or NFA-crossing successor, inconsistent offsets, empty network",
	Default: Error,
	Run: func(p *Pass, a *Analyzer) []Diagnostic {
		return problemDiags(p, a, func(k automata.ProblemKind) bool {
			return k != automata.ProblemNoStart
		})
	},
}

var analyzerNoStart = &Analyzer{
	Code:    "AP002",
	Name:    "no-start",
	Doc:     "an NFA has no start state and can never be enabled",
	Default: Error,
	Run: func(p *Pass, a *Analyzer) []Diagnostic {
		ds := problemDiags(p, a, func(k automata.ProblemKind) bool {
			return k == automata.ProblemNoStart
		})
		for i := range ds {
			ds[i].Fix = "mark at least one state all-input or start-of-data"
		}
		return ds
	},
}

var analyzerEmptySymset = &Analyzer{
	Code:    "AP003",
	Name:    "empty-symset",
	Doc:     "a state's symbol set matches no input symbol, so it can never fire",
	Default: Error,
	Run: func(p *Pass, a *Analyzer) []Diagnostic {
		var out []Diagnostic
		for s := range p.Net.States {
			if p.Net.States[s].Match.IsEmpty() {
				out = append(out, p.stateDiag(a, Error, automata.StateID(s),
					"empty symbol set: the state can never match",
					"remove the state or give it a non-empty symbol set"))
			}
		}
		return out
	},
}

var analyzerDuplicateEdge = &Analyzer{
	Code:    "AP004",
	Name:    "duplicate-edge",
	Doc:     "the same activate-on-match edge is listed more than once (ambiguous duplicate activation)",
	Default: Warning,
	Run: func(p *Pass, a *Analyzer) []Diagnostic {
		var out []Diagnostic
		seen := make(map[automata.StateID]int)
		for u := range p.Net.States {
			succ := p.Net.States[u].Succ
			if len(succ) < 2 {
				continue
			}
			clear(seen)
			for _, v := range succ {
				seen[v]++
			}
			for _, v := range succ {
				if c := seen[v]; c > 1 {
					out = append(out, p.stateDiag(a, Warning, automata.StateID(u),
						fmt.Sprintf("edge to state %d listed %d times", v, c),
						"call Dedup() after building the automaton"))
					seen[v] = 0 // report each duplicate target once
				}
			}
		}
		return out
	},
}

var analyzerUnreachable = &Analyzer{
	Code:       "AP005",
	Name:       "unreachable",
	Doc:        "a state is unreachable from every start state of its NFA and wastes an STE",
	Default:    Warning,
	NeedsSound: true,
	Run: func(p *Pass, a *Analyzer) []Diagnostic {
		var out []Diagnostic
		reach := p.Reach()
		for s := range p.Net.States {
			if !reach[s] {
				out = append(out, p.stateDiag(a, Warning, automata.StateID(s),
					"unreachable from any start state",
					"run automata.PruneUnreachable"))
			}
		}
		return out
	},
}

var analyzerDeadEnd = &Analyzer{
	Code:       "AP006",
	Name:       "dead-end",
	Doc:        "a non-reporting state cannot reach any reporting state and can never contribute to a match",
	Default:    Warning,
	NeedsSound: true,
	Run: func(p *Pass, a *Analyzer) []Diagnostic {
		var out []Diagnostic
		co := p.CoReach()
		for s := range p.Net.States {
			if !co[s] {
				out = append(out, p.stateDiag(a, Warning, automata.StateID(s),
					"no reporting state is reachable from this state",
					"run automata.PruneDeadEnds"))
			}
		}
		return out
	},
}

var analyzerStartNoReport = &Analyzer{
	Code:       "AP007",
	Name:       "start-no-report",
	Doc:        "a start state cannot reach any reporting state: the whole pattern anchored there can never match",
	Default:    Warning,
	NeedsSound: true,
	Run: func(p *Pass, a *Analyzer) []Diagnostic {
		var out []Diagnostic
		co := p.CoReach()
		for s := range p.Net.States {
			if p.Net.States[s].Start != automata.StartNone && !co[s] {
				out = append(out, p.stateDiag(a, Warning, automata.StateID(s),
					fmt.Sprintf("%s start state cannot reach any reporting state", p.Net.States[s].Start),
					"add a report-on-match marker or remove the dead pattern"))
			}
		}
		return out
	},
}

var analyzerStartKind = &Analyzer{
	Code:    "AP008",
	Name:    "start-kind",
	Doc:     "start-kind misuse: an invalid kind value, or one NFA mixing all-input and start-of-data starts",
	Default: Warning,
	Run: func(p *Pass, a *Analyzer) []Diagnostic {
		var out []Diagnostic
		n := p.Net
		kinds := make([]uint8, n.NumNFAs()) // bit 0: all-input, bit 1: start-of-data
		for s := range n.States {
			k := n.States[s].Start
			switch k {
			case automata.StartNone:
			case automata.StartAllInput, automata.StartOfData:
				if int(s) < len(n.NFAOf) {
					if nfa := int(n.NFAOf[s]); nfa >= 0 && nfa < len(kinds) {
						if k == automata.StartAllInput {
							kinds[nfa] |= 1
						} else {
							kinds[nfa] |= 2
						}
					}
				}
			default:
				out = append(out, p.stateDiag(a, Error, automata.StateID(s),
					fmt.Sprintf("invalid start kind %d", uint8(k)),
					"use StartNone, StartAllInput or StartOfData"))
			}
		}
		for i, b := range kinds {
			if b == 3 {
				out = append(out, nfaDiag(a, Warning, i,
					"NFA mixes all-input and start-of-data start states; its matches depend on position in a way profiling cannot see",
					"split the NFA or unify its start kinds"))
			}
		}
		return out
	},
}

var analyzerCapacity = &Analyzer{
	Code:    "AP009",
	Name:    "capacity",
	Doc:     "an NFA holds more states than an AP half-core; NFA-granularity batching cannot place it",
	Default: Error,
	Run: func(p *Pass, a *Analyzer) []Diagnostic {
		cap := p.Opts.Capacity
		if cap <= 0 {
			return nil
		}
		var out []Diagnostic
		for i := 0; i < p.Net.NumNFAs(); i++ {
			if sz := p.Net.NFASize(i); sz > cap {
				out = append(out, nfaDiag(a, Error, i,
					fmt.Sprintf("NFA has %d states, exceeding half-core capacity %d", sz, cap),
					"split the pattern or raise -capacity"))
			}
		}
		return out
	},
}

var analyzerRedundant = &Analyzer{
	Code:       "AP010",
	Name:       "redundant-state",
	Doc:        "two non-reporting states are structurally identical (same symbol set, start kind, predecessors and successors) — bisimulation-lite duplicates",
	Default:    Info,
	NeedsSound: true,
	Run: func(p *Pass, a *Analyzer) []Diagnostic {
		n := p.Net
		preds := n.Preds()
		// Key each non-reporting state by (match, start, sorted preds,
		// sorted succs); states sharing a key are enabled on exactly the
		// same cycles and activate exactly the same targets, so one STE
		// could stand for all of them. This is one refinement step of the
		// full backward bisimulation in automata.MergeEquivalent — precise
		// (no false positives) but not exhaustive.
		type key struct {
			match      symset.Set
			start      automata.StartKind
			pred, succ string
		}
		idList := func(ids []automata.StateID) string {
			s := append([]automata.StateID(nil), ids...)
			sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
			b := make([]byte, 0, 4*len(s))
			var last automata.StateID = automata.None
			for _, v := range s {
				if v == last {
					continue
				}
				last = v
				b = append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
			}
			return string(b)
		}
		first := make(map[key]automata.StateID)
		var out []Diagnostic
		for s := range n.States {
			st := &n.States[s]
			if st.Report {
				continue
			}
			k := key{match: st.Match, start: st.Start,
				pred: idList(preds[s]), succ: idList(st.Succ)}
			if f, dup := first[k]; dup {
				out = append(out, p.stateDiag(a, Info, automata.StateID(s),
					fmt.Sprintf("structurally identical to state %d", f),
					"run automata.MergeEquivalent"))
			} else {
				first[k] = automata.StateID(s)
			}
		}
		return out
	},
}
