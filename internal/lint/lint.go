// Package lint implements a registry-based static-analysis pass over
// automata networks — the compile-time checking layer of AP toolchains
// (VASim's validation passes, the ANML compiler's network checks).
//
// Each Analyzer owns one stable diagnostic code (AP001, AP002, …) and
// reports every violation it finds as a structured Diagnostic instead of a
// first-error-wins error value: code, severity, NFA/state location, human
// message and an optional suggested fix. Analyzers fall into two groups:
//
//   - network analyzers, run by Run over any automata.Network (from a
//     workload generator, an ANML file or a compiled regex set), and
//   - partition analyzers, run by RunPartition over a hot/cold partition's
//     PartitionInfo; hotcold.Partition.CheckInvariants is a thin wrapper
//     over them.
//
// The structure analyzers (AP001/AP002) are themselves thin wrappers over
// automata.StructuralProblems — the one shared implementation that also
// backs NFA.Validate and Network.Validate (automata cannot import this
// package, so the core lives there and both layers format its findings).
//
// cmd/aplint exposes the registry on the command line; workloads.Build,
// cmd/apgen and cmd/apsim run it as part of the pipeline.
package lint

import (
	"fmt"
	"sort"
	"strings"

	"sparseap/internal/automata"
	"sparseap/internal/dataflow"
	"sparseap/internal/graph"
	"sparseap/internal/hotness"
	"sparseap/internal/rewrite"
	"sparseap/internal/symset"
	"sparseap/internal/worstcase"
)

// Severity ranks a diagnostic.
type Severity uint8

const (
	// Info marks an optimization opportunity; the network is correct.
	Info Severity = iota
	// Warning marks a structure that is almost certainly unintended but
	// does not break execution or partitioning.
	Warning
	// Error marks a violation of an invariant the pipeline relies on.
	Error
)

// String names the severity.
func (s Severity) String() string {
	switch s {
	case Info:
		return "info"
	case Warning:
		return "warning"
	case Error:
		return "error"
	}
	return fmt.Sprintf("Severity(%d)", uint8(s))
}

// MarshalText renders the severity for JSON output.
func (s Severity) MarshalText() ([]byte, error) { return []byte(s.String()), nil }

// UnmarshalText parses a severity name.
func (s *Severity) UnmarshalText(b []byte) error {
	switch string(b) {
	case "info":
		*s = Info
	case "warning":
		*s = Warning
	case "error":
		*s = Error
	default:
		return fmt.Errorf("lint: unknown severity %q", b)
	}
	return nil
}

// Diagnostic is one finding of one analyzer.
type Diagnostic struct {
	// Code is the stable analyzer code ("AP001"…).
	Code string `json:"code"`
	// Severity ranks the finding.
	Severity Severity `json:"severity"`
	// NFA is the owning NFA index, or -1 for network-level findings.
	NFA int `json:"nfa"`
	// State is the offending state's global ID, or -1 (automata.None) for
	// NFA- and network-level findings.
	State automata.StateID `json:"state"`
	// Name is the state's ANML name, when it has one.
	Name string `json:"name,omitempty"`
	// Msg describes the finding.
	Msg string `json:"msg"`
	// Fix optionally suggests a remedy.
	Fix string `json:"fix,omitempty"`
}

// String renders the diagnostic in the one-line text format of cmd/aplint:
//
//	AP005 warning: nfa 3 state 17 "foo": unreachable from any start state
func (d Diagnostic) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s %s: ", d.Code, d.Severity)
	switch {
	case d.State != automata.None:
		if d.NFA >= 0 {
			fmt.Fprintf(&b, "nfa %d ", d.NFA)
		}
		fmt.Fprintf(&b, "state %d", d.State)
		if d.Name != "" {
			fmt.Fprintf(&b, " %q", d.Name)
		}
		b.WriteString(": ")
	case d.NFA >= 0:
		fmt.Fprintf(&b, "nfa %d: ", d.NFA)
	}
	b.WriteString(d.Msg)
	if d.Fix != "" {
		fmt.Fprintf(&b, " (fix: %s)", d.Fix)
	}
	return b.String()
}

// Analyzer is one registered check.
type Analyzer struct {
	// Code is the stable diagnostic code ("AP001"…), unique in the
	// registry. All diagnostics the analyzer emits carry this code.
	Code string
	// Name is a short kebab-case identifier.
	Name string
	// Doc is a one-line description for -list output and documentation.
	Doc string
	// Default is the severity of a typical finding (individual diagnostics
	// may deviate, e.g. AP008 upgrades invalid start kinds to errors).
	Default Severity
	// NeedsSound marks analyzers that traverse successor edges and
	// therefore require a structurally sound network (no AP001 errors);
	// they are skipped, and recorded in Result.Skipped, otherwise.
	NeedsSound bool
	// NeedsPartition marks partition analyzers: they run only under
	// RunPartition, where Pass.Part is set.
	NeedsPartition bool
	// Run reports the analyzer's findings. The analyzer itself is passed
	// in so the implementation can stamp its code without referring to its
	// own package-level variable (which would be an initialization cycle).
	Run func(*Pass, *Analyzer) []Diagnostic
}

// registry holds every analyzer keyed by code.
var registry = map[string]*Analyzer{}

// Register installs an analyzer. It panics on duplicate codes — analyzers
// are registered from init functions, so a duplicate is a programming
// error.
func Register(a *Analyzer) {
	if a.Code == "" || a.Run == nil {
		panic("lint: analyzer without code or run function")
	}
	if _, dup := registry[a.Code]; dup {
		panic("lint: duplicate analyzer code " + a.Code)
	}
	registry[a.Code] = a
}

// All returns every registered analyzer sorted by code.
func All() []*Analyzer {
	out := make([]*Analyzer, 0, len(registry))
	for _, a := range registry {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Code < out[j].Code })
	return out
}

// Lookup returns the analyzer owning a code, or nil.
func Lookup(code string) *Analyzer { return registry[code] }

// Options configures a lint run.
type Options struct {
	// Capacity, when positive, is the AP half-core STE capacity the
	// capacity analyzer (AP009) checks NFA sizes against; 0 disables it.
	Capacity int
	// Enable, when non-empty, restricts the run to these codes.
	Enable []string
	// Disable skips these codes.
	Disable []string
	// MinSeverity skips analyzers whose Default severity is lower, and
	// drops weaker diagnostics from the ones that run. The zero value
	// (Info) runs everything.
	MinSeverity Severity
	// ReportBudget overrides the intermediate-report density the AP016
	// analyzer warns above; 0 means DefaultReportBudget.
	ReportBudget float64
	// Alphabet is the assumed input alphabet for the semantic analyzers
	// (AP017–AP022) and the rewriter; the zero value means the full
	// 256-symbol alphabet.
	Alphabet symset.Set
}

func (o Options) wants(a *Analyzer) bool {
	if a.Default < o.MinSeverity {
		return false
	}
	for _, c := range o.Disable {
		if c == a.Code || c == a.Name {
			return false
		}
	}
	if len(o.Enable) == 0 {
		return true
	}
	for _, c := range o.Enable {
		if c == a.Code || c == a.Name {
			return true
		}
	}
	return false
}

// Pass carries one network (and optionally one partition) through the
// analyzers, memoizing the shared graph analyses so each is computed at
// most once per run.
type Pass struct {
	// Net is the network under analysis.
	Net *automata.Network
	// Opts is the run configuration.
	Opts Options
	// Part is the partition under analysis (RunPartition only).
	Part *PartitionInfo

	problems     []automata.Problem
	haveProblems bool
	topo         *graph.Topo
	reach        []bool
	coreach      []bool
	facts        *dataflow.Facts
	hot          *hotness.Analysis
	opt          *rewrite.Result
	optErr       error
	optDone      bool
	wc           *worstcase.Analysis
	wcWit        *worstcase.Witness
	wcRep        *worstcase.Replay
	wcWitDone    bool
}

// Problems returns the network's structural problems, computed once.
func (p *Pass) Problems() []automata.Problem {
	if !p.haveProblems {
		p.problems = p.Net.StructuralProblems()
		p.haveProblems = true
	}
	return p.problems
}

// Sound reports whether the network is structurally sound enough for
// edge-traversing analyzers (no offsets/range/cross-NFA/empty problems;
// missing start states are tolerated).
func (p *Pass) Sound() bool {
	for _, pr := range p.Problems() {
		if pr.Kind != automata.ProblemNoStart {
			return false
		}
	}
	return true
}

// Topo returns the layered topological order, computed once.
func (p *Pass) Topo() *graph.Topo {
	if p.topo == nil {
		p.topo = graph.TopoOrder(p.Net)
	}
	return p.topo
}

// Reach returns per-state reachability from start states, computed once.
func (p *Pass) Reach() []bool {
	if p.reach == nil {
		p.reach = graph.ReachableFromStarts(p.Net)
	}
	return p.reach
}

// CoReach returns, per state, whether some reporting state is reachable
// from it (reporting states co-reach themselves), computed once.
func (p *Pass) CoReach() []bool {
	if p.coreach == nil {
		n := p.Net
		co := make([]bool, n.Len())
		preds := n.Preds()
		var stack []automata.StateID
		for s := range n.States {
			if n.States[s].Report {
				co[s] = true
				stack = append(stack, automata.StateID(s))
			}
		}
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, v := range preds[u] {
				if !co[v] {
					co[v] = true
					stack = append(stack, v)
				}
			}
		}
		p.coreach = co
	}
	return p.coreach
}

// Facts returns the dataflow fixpoint facts (fire sets and liveness)
// under the configured alphabet, computed once. Callers must only use it
// from NeedsSound analyzers — the analysis traverses successor edges.
func (p *Pass) Facts() *dataflow.Facts {
	if p.facts == nil {
		p.facts = dataflow.Analyze(p.Net, p.Opts.Alphabet)
	}
	return p.facts
}

// Hotness returns the static hotness analysis under the configured
// alphabet and the package-default model and weights, computed once. It
// shares the memoized Topo and Facts. Callers must only use it from
// NeedsSound analyzers.
func (p *Pass) Hotness() *hotness.Analysis {
	if p.hot == nil {
		p.hot = hotness.Analyze(p.Net, hotness.Config{
			Alphabet: p.Opts.Alphabet,
			Topo:     p.Topo(),
			Facts:    p.Facts(),
		})
	}
	return p.hot
}

// WorstCase returns the worst-case frontier/report analysis under the
// configured alphabet, computed once at a lint-sized layer-3 budget (the
// bound is sound at any budget; a CLI wanting the tightest bound runs
// worstcase.Analyze itself). Callers must only use it from NeedsSound
// analyzers.
func (p *Pass) WorstCase() *worstcase.Analysis {
	if p.wc == nil {
		p.wc = worstcase.Analyze(p.Net, worstcase.Config{
			Alphabet:   p.Opts.Alphabet,
			Facts:      p.Facts(),
			GramBudget: lintGramBudget,
		})
	}
	return p.wc
}

// WorstCaseWitness returns the adversarial witness synthesized against
// the worst-case bound and its engine replay, computed once at a
// lint-sized search budget. Callers must only use it from NeedsSound
// analyzers.
func (p *Pass) WorstCaseWitness() (*worstcase.Witness, *worstcase.Replay) {
	if !p.wcWitDone {
		w, r := p.WorstCase().Certify(worstcase.WitnessOptions{
			MaxLen:   lintWitnessLen,
			TopK:     lintWitnessTopK,
			Patience: lintWitnessPatience,
		})
		p.wcWit, p.wcRep = w, r
		p.wcWitDone = true
	}
	return p.wcWit, p.wcRep
}

// RewriteOptions returns the rewriter configuration matching this run's
// options: same alphabet, capacity guard at the configured half-core
// capacity (rewrite.DefaultCapacity when unset).
func (p *Pass) RewriteOptions() rewrite.Options {
	return rewrite.Options{Alphabet: p.Opts.Alphabet, Capacity: p.Opts.Capacity}
}

// Optimized returns the result of a dry rewrite of the network under
// RewriteOptions, computed once. The network is not modified — analyzers
// use the result to report what a rewrite would save. Callers must only
// use it from NeedsSound analyzers.
func (p *Pass) Optimized() (*rewrite.Result, error) {
	if !p.optDone {
		p.opt, p.optErr = rewrite.Rewrite(p.Net, p.RewriteOptions())
		p.optDone = true
	}
	return p.opt, p.optErr
}

// stateDiag builds a state-level diagnostic, filling NFA index and name
// from the network.
func (p *Pass) stateDiag(a *Analyzer, sev Severity, s automata.StateID, msg, fix string) Diagnostic {
	nfa := -1
	name := ""
	if int(s) < len(p.Net.NFAOf) {
		nfa = int(p.Net.NFAOf[s])
	}
	if int(s) < p.Net.Len() {
		name = p.Net.States[s].Name
	}
	return Diagnostic{Code: a.Code, Severity: sev, NFA: nfa, State: s, Name: name, Msg: msg, Fix: fix}
}

// nfaDiag builds an NFA-level diagnostic.
func nfaDiag(a *Analyzer, sev Severity, nfa int, msg, fix string) Diagnostic {
	return Diagnostic{Code: a.Code, Severity: sev, NFA: nfa, State: automata.None, Msg: msg, Fix: fix}
}

// Result is the outcome of a lint run.
type Result struct {
	// Diags holds every finding, sorted by (NFA, state, code).
	Diags []Diagnostic
	// Skipped lists codes of NeedsSound analyzers that could not run
	// because the network is structurally broken.
	Skipped []string
}

// Counts returns the number of diagnostics per code.
func (r *Result) Counts() map[string]int {
	m := make(map[string]int)
	for _, d := range r.Diags {
		m[d.Code]++
	}
	return m
}

// Count returns the number of diagnostics at exactly the given severity.
func (r *Result) Count(sev Severity) int {
	n := 0
	for _, d := range r.Diags {
		if d.Severity == sev {
			n++
		}
	}
	return n
}

// Summary renders a one-line severity tally ("2 errors, 1 warning"), or
// "clean" when there are no findings.
func (r *Result) Summary() string {
	if len(r.Diags) == 0 {
		return "clean"
	}
	var parts []string
	add := func(n int, word string) {
		if n == 0 {
			return
		}
		if n > 1 {
			word += "s"
		}
		parts = append(parts, fmt.Sprintf("%d %s", n, word))
	}
	add(r.Count(Error), "error")
	add(r.Count(Warning), "warning")
	if n := r.Count(Info); n > 0 {
		parts = append(parts, fmt.Sprintf("%d info", n))
	}
	return strings.Join(parts, ", ")
}

// Err returns nil when no Error-severity diagnostic was reported, and an
// error summarizing the first one (plus a count) otherwise. It is how the
// linter degrades back into the classic Validate/CheckInvariants contract.
func (r *Result) Err() error { return r.ErrAt(Error) }

// ErrAt is Err with a configurable threshold: it returns an error
// summarizing the first diagnostic at or above min severity (plus a
// count of the rest). Strict mode (aplint -strict) uses ErrAt(Warning),
// so the exit path counts exactly the diagnostics the summary shows.
func (r *Result) ErrAt(min Severity) error {
	first := -1
	n := 0
	for i, d := range r.Diags {
		if d.Severity >= min {
			if first < 0 {
				first = i
			}
			n++
		}
	}
	if first < 0 {
		return nil
	}
	if n == 1 {
		return fmt.Errorf("lint: %s", r.Diags[first])
	}
	return fmt.Errorf("lint: %s (and %d more findings at %s or above)", r.Diags[first], n-1, min)
}

// run executes the selected analyzers over an initialized pass.
func run(p *Pass, partition bool) *Result {
	res := &Result{}
	for _, a := range All() {
		if a.NeedsPartition != partition || !p.Opts.wants(a) {
			continue
		}
		if a.NeedsSound && !p.Sound() {
			res.Skipped = append(res.Skipped, a.Code)
			continue
		}
		for _, d := range a.Run(p, a) {
			if d.Severity >= p.Opts.MinSeverity {
				res.Diags = append(res.Diags, d)
			}
		}
	}
	SortDiagnostics(res.Diags)
	return res
}

// SortDiagnostics orders diagnostics by (NFA, state, code) — the
// canonical emission order of both the text and JSON outputs. Callers
// that concatenate results (cmd/aplint merging network and partition
// findings) re-sort with this before emitting.
func SortDiagnostics(diags []Diagnostic) {
	sort.SliceStable(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.NFA != b.NFA {
			return a.NFA < b.NFA
		}
		if a.State != b.State {
			return a.State < b.State
		}
		return a.Code < b.Code
	})
}

// Run executes every applicable network analyzer over the network.
func Run(net *automata.Network, opts Options) *Result {
	return run(&Pass{Net: net, Opts: opts}, false)
}

// RunPartition executes every applicable partition analyzer over a hot/cold
// partition. The network analyzers are not re-run; lint the original
// network separately with Run.
func RunPartition(pi *PartitionInfo, opts Options) *Result {
	return run(&Pass{Net: pi.Net, Opts: opts, Part: pi}, true)
}
