package lint

import (
	"encoding/json"
	"fmt"
	"strings"
	"testing"

	"sparseap/internal/automata"
	"sparseap/internal/symset"
)

func TestRegistryIsComplete(t *testing.T) {
	all := All()
	if len(all) < 15 {
		t.Fatalf("expected at least 15 analyzers, got %d", len(all))
	}
	names := make(map[string]bool)
	for i, a := range all {
		want := fmt.Sprintf("AP%03d", i+1)
		if a.Code != want {
			t.Errorf("analyzer %d has code %s, want contiguous %s", i, a.Code, want)
		}
		if a.Name == "" || a.Doc == "" {
			t.Errorf("%s is missing a name or doc string", a.Code)
		}
		if names[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		names[a.Name] = true
		if Lookup(a.Code) != a {
			t.Errorf("Lookup(%s) did not return the registered analyzer", a.Code)
		}
	}
	if Lookup("AP999") != nil {
		t.Errorf("Lookup of an unknown code should return nil")
	}
}

func TestRegisterRejectsDuplicates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("Register accepted a duplicate code")
		}
	}()
	Register(&Analyzer{Code: "AP001", Run: func(*Pass, *Analyzer) []Diagnostic { return nil }})
}

// brokenNet returns a network that triggers AP002 (error), AP004 (warning)
// and AP010 (info) at once, for filter tests.
func brokenNet() *automata.Network {
	m := automata.NewNFA()
	a := m.Add(symset.Single('a'), automata.StartAllInput, false)
	b1 := m.Add(symset.Single('b'), automata.StartNone, false)
	b2 := m.Add(symset.Single('b'), automata.StartNone, false)
	r := m.Add(symset.Single('c'), automata.StartNone, true)
	m.Connect(a, b1)
	m.Connect(a, b2)
	m.Connect(b1, r)
	m.Connect(b2, r)
	m.Connect(a, b1) // duplicate edge -> AP004
	n := automata.NewNFA()
	n.Add(symset.Single('x'), automata.StartNone, true) // no start -> AP002
	return automata.NewNetwork(m, n)
}

func TestOptionsEnableDisable(t *testing.T) {
	net := brokenNet()

	all := Run(net, Options{})
	for _, code := range []string{"AP002", "AP004", "AP010"} {
		if all.Counts()[code] == 0 {
			t.Fatalf("fixture should trigger %s, got %v", code, all.Diags)
		}
	}

	byCode := Run(net, Options{Enable: []string{"AP004"}})
	if len(byCode.Counts()) != 1 || byCode.Counts()["AP004"] == 0 {
		t.Errorf("Enable by code should run only AP004, got %v", byCode.Diags)
	}

	byName := Run(net, Options{Enable: []string{"duplicate-edge"}})
	if len(byName.Counts()) != 1 || byName.Counts()["AP004"] == 0 {
		t.Errorf("Enable by name should run only AP004, got %v", byName.Diags)
	}

	disabled := Run(net, Options{Disable: []string{"AP004", "redundant-state"}})
	if disabled.Counts()["AP004"] != 0 || disabled.Counts()["AP010"] != 0 {
		t.Errorf("Disable should drop AP004 and AP010, got %v", disabled.Diags)
	}
	if disabled.Counts()["AP002"] == 0 {
		t.Errorf("Disable should not drop unrelated analyzers")
	}
}

func TestOptionsMinSeverity(t *testing.T) {
	net := brokenNet()
	res := Run(net, Options{MinSeverity: Error})
	if res.Counts()["AP002"] == 0 {
		t.Errorf("MinSeverity Error should keep AP002, got %v", res.Diags)
	}
	for _, d := range res.Diags {
		if d.Severity < Error {
			t.Errorf("MinSeverity Error leaked %v", d)
		}
	}
}

func TestResultSummaryAndErr(t *testing.T) {
	clean := &Result{}
	if s := clean.Summary(); s != "clean" {
		t.Errorf("empty result Summary() = %q, want clean", s)
	}
	if clean.Err() != nil {
		t.Errorf("empty result Err() should be nil")
	}

	res := Run(brokenNet(), Options{})
	sum := res.Summary()
	if !strings.Contains(sum, "error") || !strings.Contains(sum, "warning") || !strings.Contains(sum, "info") {
		t.Errorf("Summary() = %q, want all three severities mentioned", sum)
	}
	if err := res.Err(); err == nil || !strings.Contains(err.Error(), "AP002") {
		t.Errorf("Err() = %v, want the AP002 error surfaced", err)
	}

	warnOnly := &Result{Diags: []Diagnostic{{Code: "AP004", Severity: Warning}}}
	if warnOnly.Err() != nil {
		t.Errorf("warnings alone must not produce an error")
	}
}

func TestResultCounts(t *testing.T) {
	res := Run(brokenNet(), Options{})
	if got := res.Count(Error); got != 1 {
		t.Errorf("Count(Error) = %d, want 1", got)
	}
	total := 0
	for _, n := range res.Counts() {
		total += n
	}
	if total != len(res.Diags) {
		t.Errorf("Counts() total %d != %d diagnostics", total, len(res.Diags))
	}
}

func TestDiagnosticJSONRoundTrip(t *testing.T) {
	in := Diagnostic{Code: "AP009", Severity: Error, NFA: 2, State: 41,
		Name: "q", Msg: "too big", Fix: "split the NFA"}
	b, err := json.Marshal(in)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	if !strings.Contains(string(b), `"severity":"error"`) {
		t.Errorf("severity should serialize as text, got %s", b)
	}
	var out Diagnostic
	if err := json.Unmarshal(b, &out); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if out != in {
		t.Errorf("round trip changed the diagnostic: %+v != %+v", out, in)
	}
	var sev Severity
	if err := sev.UnmarshalText([]byte("bogus")); err == nil {
		t.Errorf("UnmarshalText should reject unknown severities")
	}
}

func TestDiagnosticsAreSorted(t *testing.T) {
	res := Run(brokenNet(), Options{})
	for i := 1; i < len(res.Diags); i++ {
		a, b := res.Diags[i-1], res.Diags[i]
		if a.NFA > b.NFA || (a.NFA == b.NFA && a.State > b.State) {
			t.Errorf("diagnostics out of order at %d: %v before %v", i, a, b)
		}
	}
}

func TestValidateMatchesLintErrors(t *testing.T) {
	// The classic Validate contract and the lint error channel must agree:
	// both are wrappers over automata.StructuralProblems.
	nets := []*automata.Network{brokenNet(), automata.NewNetwork(chainNFA("ab"))}
	bad := automata.NewNetwork(chainNFA("ab"))
	bad.States[0].Succ = append(bad.States[0].Succ, 99)
	nets = append(nets, bad)
	for i, net := range nets {
		verr := net.Validate()
		lerr := Run(net, Options{Enable: []string{"AP001", "AP002"}}).Err()
		if (verr == nil) != (lerr == nil) {
			t.Errorf("net %d: Validate()=%v but lint Err()=%v", i, verr, lerr)
		}
	}
}
