// Semantic analyzers AP017–AP022: findings derived from the dataflow
// fixpoint facts (internal/dataflow) and the proof-carrying rewriter
// (internal/rewrite), as opposed to the purely structural checks of
// AP001–AP010. Where a structural analyzer already owns a finding, the
// semantic one excludes it: AP017 skips what AP005 flags (structurally
// unreachable) and what AP003 flags (empty symbol set), reporting only
// states that look fine syntactically but provably never fire.
package lint

import (
	"fmt"

	"sparseap/internal/automata"
	"sparseap/internal/rewrite"
)

func init() {
	Register(analyzerSemUnreachable)
	Register(analyzerSubsumed)
	Register(analyzerDeadReport)
	Register(analyzerSymbolEmptyEdge)
	Register(analyzerCutCost)
	Register(analyzerOversizedHint)
}

var analyzerSemUnreachable = &Analyzer{
	Code:       "AP017",
	Name:       "sem-unreachable",
	Doc:        "a state is structurally reachable but provably never fires under the assumed alphabet (no enabling chain carries a matching symbol)",
	Default:    Warning,
	NeedsSound: true,
	Run: func(p *Pass, a *Analyzer) []Diagnostic {
		facts := p.Facts()
		reach := p.Reach()
		var out []Diagnostic
		for s := 0; s < p.Net.Len(); s++ {
			id := automata.StateID(s)
			st := &p.Net.States[s]
			if st.Report || !reach[s] || !facts.Unreachable(id) {
				continue // reporting states are AP019's; AP005 owns structural
			}
			if st.Match.Intersect(facts.Alphabet).IsEmpty() {
				continue // AP003 (or an alphabet-empty match) owns this state
			}
			out = append(out, p.stateDiag(a, a.Default, id,
				"state can never fire: no predecessor can deliver a matching symbol under the assumed alphabet",
				"delete it with aplint -fix"))
		}
		return out
	},
}

var analyzerSubsumed = &Analyzer{
	Code:       "AP018",
	Name:       "subsumed-sibling",
	Doc:        "a non-reporting state is subsumed by a sibling (same predecessors, contained symbol set and successors) and can fold into it",
	Default:    Info,
	NeedsSound: true,
	Run: func(p *Pass, a *Analyzer) []Diagnostic {
		res, err := p.Optimized()
		if err != nil || !res.Changed() {
			return nil
		}
		var out []Diagnostic
		// Round 0 certificates are stated against the original network,
		// so their IDs are directly reportable.
		for _, c := range res.Rounds[0].Certs {
			if c.Kind != rewrite.CertSubsumed {
				continue
			}
			out = append(out, p.stateDiag(a, a.Default, c.State,
				fmt.Sprintf("state is subsumed by state %d: every activation and enabling it provides, state %d provides too", c.Into, c.Into),
				"fold it with aplint -fix"))
		}
		return out
	},
}

var analyzerDeadReport = &Analyzer{
	Code:       "AP019",
	Name:       "dead-reporting-state",
	Doc:        "a reporting state provably never fires under the assumed alphabet, so the report it stands for can never be emitted",
	Default:    Warning,
	NeedsSound: true,
	Run: func(p *Pass, a *Analyzer) []Diagnostic {
		facts := p.Facts()
		reach := p.Reach()
		var out []Diagnostic
		for s := 0; s < p.Net.Len(); s++ {
			id := automata.StateID(s)
			st := &p.Net.States[s]
			if !st.Report || !reach[s] || !facts.Unreachable(id) {
				continue
			}
			if st.Match.Intersect(facts.Alphabet).IsEmpty() {
				continue // AP003 owns empty symbol sets
			}
			out = append(out, p.stateDiag(a, a.Default, id,
				"reporting state can never fire: its report is unsatisfiable under the assumed alphabet",
				"check the pattern, or delete it with aplint -fix"))
		}
		return out
	},
}

var analyzerSymbolEmptyEdge = &Analyzer{
	Code:       "AP020",
	Name:       "symbol-empty-transition",
	Doc:        "a transition targets a state whose symbol set is disjoint from the assumed alphabet; the edge can never activate its target",
	Default:    Warning,
	NeedsSound: true,
	Run: func(p *Pass, a *Analyzer) []Diagnostic {
		facts := p.Facts()
		var out []Diagnostic
		for u := 0; u < p.Net.Len(); u++ {
			if facts.Unreachable(automata.StateID(u)) {
				continue // the source never fires; AP017/AP005 own it
			}
			seen := make(map[automata.StateID]bool)
			for _, v := range p.Net.States[u].Succ {
				st := &p.Net.States[v]
				if st.Match.IsEmpty() || !st.Match.Intersect(facts.Alphabet).IsEmpty() {
					continue // empty matches are AP003's; firable targets are fine
				}
				if seen[v] {
					continue
				}
				seen[v] = true
				out = append(out, p.stateDiag(a, a.Default, automata.StateID(u),
					fmt.Sprintf("transition to state %d is symbol-empty: the target matches no symbol of the assumed alphabet", v),
					"prune it with aplint -fix"))
			}
		}
		return out
	},
}

var analyzerCutCost = &Analyzer{
	Code:       "AP021",
	Name:       "cut-cost",
	Doc:        "estimated cheapest layer cut of an oversized NFA, from the forward fire-set facts: the expected boundary crossings per symbol any partition of it must pay",
	Default:    Info,
	NeedsSound: true,
	Run: func(p *Pass, a *Analyzer) []Diagnostic {
		if p.Opts.Capacity <= 0 {
			return nil
		}
		facts := p.Facts()
		topo := p.Topo()
		var out []Diagnostic
		for i := 0; i < p.Net.NumNFAs(); i++ {
			if p.Net.NFASize(i) <= p.Opts.Capacity {
				continue // fits whole; no cut needed (AP009 flags the rest)
			}
			maxLayer := int(topo.MaxPerNFA[i])
			if maxLayer < 2 {
				continue // single layer: no cut exists
			}
			// cost(ℓ) = Σ FireProb(u) over edges u→v with
			// order(u) < ℓ ≤ order(v); accumulate each edge onto its
			// layer range with a difference array, then prefix-sum.
			diff := make([]float64, maxLayer+2)
			lo, hi := p.Net.NFAStates(i)
			for u := lo; u < hi; u++ {
				pu := facts.FireProb(u)
				if pu == 0 {
					continue
				}
				for _, v := range p.Net.States[u].Succ {
					l1, l2 := int(topo.Order[u])+1, int(topo.Order[v])
					if l1 > l2 {
						continue // back edge: crosses no forward cut
					}
					diff[l1] += pu
					diff[l2+1] -= pu
				}
			}
			best := -1.0
			bestLayer := 0
			cost := 0.0
			for l := 2; l <= maxLayer; l++ { // cuts strictly inside the NFA
				cost += diff[l]
				if best < 0 || cost < best {
					best, bestLayer = cost, l
				}
			}
			if best < 0 {
				continue
			}
			out = append(out, nfaDiag(a, a.Default, i,
				fmt.Sprintf("NFA exceeds capacity %d (%d states); cheapest layer cut (before layer %d) costs ≈%.4f expected crossings/symbol",
					p.Opts.Capacity, p.Net.NFASize(i), bestLayer, best), ""))
		}
		return out
	},
}

var analyzerOversizedHint = &Analyzer{
	Code:       "AP022",
	Name:       "oversized-fits-after-rewrite",
	Doc:        "an NFA exceeds the half-core capacity, but the estimated post-rewrite size fits — rewriting would make it placeable",
	Default:    Info,
	NeedsSound: true,
	Run: func(p *Pass, a *Analyzer) []Diagnostic {
		if p.Opts.Capacity <= 0 {
			return nil
		}
		res, err := p.Optimized()
		if err != nil || !res.Changed() {
			return nil
		}
		var out []Diagnostic
		for _, d := range res.Stats.PerNFA {
			if d.StatesBefore > p.Opts.Capacity && d.StatesAfter <= p.Opts.Capacity && d.StatesAfter > 0 {
				out = append(out, nfaDiag(a, a.Default, d.NFA,
					fmt.Sprintf("NFA has %d states (capacity %d) but an estimated %d after rewriting — aplint -fix would make it placeable",
						d.StatesBefore, p.Opts.Capacity, d.StatesAfter), ""))
			}
		}
		return out
	},
}
