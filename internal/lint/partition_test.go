// Partition-analyzer tests (AP011–AP015). These build genuine partitions
// with hotcold and then corrupt individual fields, so they live in an
// external test package: lint itself cannot import hotcold (hotcold imports
// lint for CheckInvariants).
package lint_test

import (
	"testing"

	"sparseap/internal/automata"
	"sparseap/internal/bitvec"
	"sparseap/internal/graph"
	"sparseap/internal/hotcold"
	"sparseap/internal/lint"
	"sparseap/internal/symset"
)

// buildChainPartition returns a partition of the chain a->b->c cut at
// layer k: topo orders are 1,2,3, so k=1 keeps only the start hot and
// introduces one intermediate reporting state for b.
func buildChainPartition(t *testing.T, k int32) *hotcold.Partition {
	t.Helper()
	m := automata.NewNFA()
	a := m.Add(symset.Single('a'), automata.StartAllInput, false)
	b := m.Add(symset.Single('b'), automata.StartNone, false)
	c := m.Add(symset.Single('c'), automata.StartNone, true)
	m.Connect(a, b)
	m.Connect(b, c)
	net := automata.NewNetwork(m)
	topo := graph.TopoOrder(net)
	part, err := hotcold.Build(net, topo, []int32{k}, hotcold.Options{})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return part
}

// only runs just the named analyzer over the partition info.
func only(pi *lint.PartitionInfo, code string) *lint.Result {
	return lint.RunPartition(pi, lint.Options{Enable: []string{code}})
}

func TestValidPartitionIsClean(t *testing.T) {
	for _, k := range []int32{1, 2, 3} {
		part := buildChainPartition(t, k)
		// Structural analyzers (AP011–AP015) must stay silent; AP016 is a
		// density heuristic and legitimately fires on this tiny chain (one
		// intermediate over a two-symbol alphabet is 0.25 reports/symbol).
		res := lint.RunPartition(part.LintInfo(), lint.Options{MinSeverity: lint.Error})
		if len(res.Diags) != 0 {
			t.Errorf("k=%d: valid partition produced diagnostics: %v", k, res.Diags)
		}
		if err := part.CheckInvariants(); err != nil {
			t.Errorf("k=%d: CheckInvariants: %v", k, err)
		}
	}
}

func TestAP011ColdHotEdge(t *testing.T) {
	part := buildChainPartition(t, 1)
	pi := part.LintInfo()
	// Pretend b is hot while a stays cold: the edge a->b now crosses the
	// cut backwards.
	pi.PredHot = bitvec.New(pi.Net.Len())
	pi.PredHot.Set(1)
	res := only(pi, "AP011")
	if res.Counts()["AP011"] == 0 {
		t.Errorf("expected AP011 for a cold->hot edge, got %v", res.Diags)
	}
}

func TestAP012SplitSCC(t *testing.T) {
	// a <-> b form one SCC; put only a on the hot side.
	m := automata.NewNFA()
	a := m.Add(symset.Single('a'), automata.StartAllInput, false)
	b := m.Add(symset.Single('b'), automata.StartNone, true)
	m.Connect(a, b)
	m.Connect(b, a)
	net := automata.NewNetwork(m)
	pi := &lint.PartitionInfo{Net: net, Topo: graph.TopoOrder(net), PredHot: bitvec.New(net.Len())}
	pi.PredHot.Set(int(a))
	res := only(pi, "AP012")
	if n := res.Counts()["AP012"]; n != 1 {
		t.Errorf("expected exactly one AP012 for the split SCC, got %d: %v", n, res.Diags)
	}
}

func TestAP013ColdStart(t *testing.T) {
	part := buildChainPartition(t, 1)
	pi := part.LintInfo()
	pi.PredHot = bitvec.New(pi.Net.Len()) // nothing hot: the start is cold
	res := only(pi, "AP013")
	if res.Counts()["AP013"] == 0 {
		t.Errorf("expected AP013 for a cold start state, got %v", res.Diags)
	}
}

func TestAP013SelfEnabledColdNetwork(t *testing.T) {
	part := buildChainPartition(t, 1)
	pi := part.LintInfo()
	pi.Cold.States[0].Start = automata.StartAllInput
	res := only(pi, "AP013")
	if res.Counts()["AP013"] == 0 {
		t.Errorf("expected AP013 for a self-enabled cold-network state, got %v", res.Diags)
	}
}

func TestAP014IntermediateInconsistencies(t *testing.T) {
	// k=1 yields exactly one intermediate (hot ID 1, standing for b).
	corrupt := map[string]func(pi *lint.PartitionInfo, iv automata.StateID){
		"not-reporting": func(pi *lint.PartitionInfo, iv automata.StateID) {
			pi.Hot.States[iv].Report = false
		},
		"has-successors": func(pi *lint.PartitionInfo, iv automata.StateID) {
			pi.Hot.States[iv].Succ = []automata.StateID{0}
		},
		"wrong-symset": func(pi *lint.PartitionInfo, iv automata.StateID) {
			pi.Hot.States[iv].Match = symset.Single('z')
		},
		"targets-hot-state": func(pi *lint.PartitionInfo, iv automata.StateID) {
			pi.Intermediate[iv] = 0 // state a is predicted hot
		},
	}
	for name, mutate := range corrupt {
		t.Run(name, func(t *testing.T) {
			part := buildChainPartition(t, 1)
			pi := part.LintInfo()
			if len(pi.Intermediate) != 1 {
				t.Fatalf("expected 1 intermediate, got %d", len(pi.Intermediate))
			}
			var iv automata.StateID
			for k := range pi.Intermediate {
				iv = k
			}
			// Pre-mutation sanity: the intermediate copies its target's
			// symbol set and matches the structure AP014 checks.
			mutate(pi, iv)
			res := only(pi, "AP014")
			if res.Counts()["AP014"] == 0 {
				t.Errorf("expected AP014 after %s corruption, got %v", name, res.Diags)
			}
		})
	}
}

func TestAP015FragmentMapInconsistencies(t *testing.T) {
	corrupt := map[string]func(pi *lint.PartitionInfo){
		"hotorig-truncated": func(pi *lint.PartitionInfo) {
			pi.HotOrig = pi.HotOrig[:len(pi.HotOrig)-1]
		},
		"coldid-inverse-broken": func(pi *lint.PartitionInfo) {
			pi.ColdID[pi.ColdOrig[0]] = automata.StateID(len(pi.ColdOrig)) + 5
		},
		"orphan-hot-state": func(pi *lint.PartitionInfo) {
			// A hot state with neither an original nor a translation entry.
			pi.HotOrig[1] = automata.None
			delete(pi.Intermediate, 1)
		},
	}
	for name, mutate := range corrupt {
		t.Run(name, func(t *testing.T) {
			part := buildChainPartition(t, 1)
			pi := part.LintInfo()
			mutate(pi)
			res := only(pi, "AP015")
			if res.Counts()["AP015"] == 0 {
				t.Errorf("expected AP015 after %s corruption, got %v", name, res.Diags)
			}
		})
	}
}

// buildFanPartition cuts a two-layer network at k=1: `starts` always-on
// states matching [lo,hi] all feed one reporting child matching the same
// range, so every child activation becomes an intermediate report.
func buildFanPartition(t *testing.T, starts int, lo, hi byte) *hotcold.Partition {
	t.Helper()
	m := automata.NewNFA()
	var wide symset.Set
	wide.AddRange(lo, hi)
	var parents []automata.StateID
	for i := 0; i < starts; i++ {
		parents = append(parents, m.Add(wide, automata.StartAllInput, false))
	}
	child := m.Add(wide, automata.StartNone, true)
	for _, p := range parents {
		m.Connect(p, child)
	}
	net := automata.NewNetwork(m)
	part, err := hotcold.Build(net, graph.TopoOrder(net), []int32{1}, hotcold.Options{})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return part
}

func TestAP016StormPronePartition(t *testing.T) {
	// PEN-shaped core: always-enabled hot layer driving an intermediate
	// that matches half the live alphabet. Predicted density ~1 report per
	// symbol, far over the 0.15 budget.
	part := buildFanPartition(t, 4, 'a', 'a'+127)
	res := only(part.LintInfo(), "AP016")
	if res.Counts()["AP016"] == 0 {
		t.Errorf("expected AP016 on a storm-prone partition, got %v", res.Diags)
	}
	// A generous explicit budget silences it.
	res = lint.RunPartition(part.LintInfo(), lint.Options{Enable: []string{"AP016"}, ReportBudget: 2})
	if res.Counts()["AP016"] != 0 {
		t.Errorf("expected no AP016 under a 2.0 budget, got %v", res.Diags)
	}
}

func TestAP016HealthyPartition(t *testing.T) {
	// The hot layer matches half the alphabet but the intermediate matches
	// a single symbol: predicted density ~1/129, well under budget.
	m := automata.NewNFA()
	var wide symset.Set
	wide.AddRange('a', 'a'+127)
	a := m.Add(wide, automata.StartAllInput, false)
	b := m.Add(symset.Single('z'), automata.StartNone, true)
	m.Connect(a, b)
	net := automata.NewNetwork(m)
	part, err := hotcold.Build(net, graph.TopoOrder(net), []int32{1}, hotcold.Options{})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	res := only(part.LintInfo(), "AP016")
	if res.Counts()["AP016"] != 0 {
		t.Errorf("expected no AP016 on a healthy partition, got %v", res.Diags)
	}
}

func TestCheckInvariantsReportsCorruption(t *testing.T) {
	part := buildChainPartition(t, 1)
	part.PredHot.Clear(0) // the start state is no longer predicted hot
	if err := part.CheckInvariants(); err == nil {
		t.Errorf("CheckInvariants accepted a corrupted partition")
	}
}
