// Hotness analyzers AP023–AP024: findings derived from the static
// hot/cold prediction (internal/hotness) — the profile-free stand-in for
// the paper's Section IV-A profiling run.
package lint

import (
	"fmt"
)

// hotFractionThreshold is the predicted hot fraction at or above which
// AP023 reports: when nearly every state is expected hot, a hot/cold
// partition cannot shed meaningful capacity and BaseAP+SpAP degenerates
// to running the whole network hot with extra plumbing.
const hotFractionThreshold = 0.9

func init() {
	Register(analyzerPredictedHotFraction)
	Register(analyzerStaticCut)
}

var analyzerPredictedHotFraction = &Analyzer{
	Code:       "AP023",
	Name:       "predicted-hot-fraction",
	Doc:        "statically predicted hot-state fraction of the network, from the activation-mass fixpoint; reported when so high that hot/cold partitioning cannot pay off",
	Default:    Info,
	NeedsSound: true,
	Run: func(p *Pass, a *Analyzer) []Diagnostic {
		if p.Net.Len() == 0 {
			return nil
		}
		if p.Opts.Capacity > 0 && p.Net.Len() <= p.Opts.Capacity {
			return nil // fits in one half-core: nothing would be partitioned anyway
		}
		h := p.Hotness()
		frac := h.HotFrac()
		if frac < hotFractionThreshold {
			return nil
		}
		return []Diagnostic{{
			Code: a.Code, Severity: a.Default, NFA: -1, State: -1,
			Msg: fmt.Sprintf("static analysis predicts %.0f%% of states hot (threshold %.0f%%): a hot/cold partition would shed almost no capacity",
				frac*100, hotFractionThreshold*100),
			Fix: "run whole-network BaseAP, or narrow the input alphabet/model if the real traffic is more selective than assumed",
		}}
	},
}

var analyzerStaticCut = &Analyzer{
	Code:       "AP024",
	Name:       "static-cut",
	Doc:        "predicted partition layer k_U of an oversized NFA from the static hotness analysis, with the residual activation mass left above the cut",
	Default:    Info,
	NeedsSound: true,
	Run: func(p *Pass, a *Analyzer) []Diagnostic {
		if p.Opts.Capacity <= 0 {
			return nil
		}
		var layers []int32 // computed lazily: most networks have no oversized NFA
		var out []Diagnostic
		for i := 0; i < p.Net.NumNFAs(); i++ {
			if p.Net.NFASize(i) <= p.Opts.Capacity {
				continue // fits whole: no partition pressure (AP009/AP021 cover the rest)
			}
			if layers == nil {
				layers = p.Hotness().Layers()
			}
			k := layers[i]
			res := p.Hotness().ResidualActivity(i, k)
			out = append(out, nfaDiag(a, a.Default, i,
				fmt.Sprintf("NFA exceeds capacity %d (%d states); static hotness analysis predicts partition layer k=%d of %d, leaving ≈%.4f expected activations/symbol above the cut",
					p.Opts.Capacity, p.Net.NFASize(i), k, p.Topo().MaxPerNFA[i], res), ""))
		}
		return out
	},
}
