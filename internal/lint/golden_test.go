// Golden-diagnostic test: lints every generated workload application and
// the networks of the four example programs, and compares the per-target
// per-code finding counts against testdata/golden.txt. A change in any
// generator, the regex compiler, or an analyzer that shifts what the suite
// reports shows up here as a reviewable diff.
//
// Regenerate with: go test ./internal/lint -run TestGolden -update
//
// External test package: lint_test -> workloads -> lint would otherwise be
// an import cycle.
package lint_test

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"sparseap"
	"sparseap/internal/automata"
	"sparseap/internal/lint"
	"sparseap/internal/workloads"
)

var update = flag.Bool("update", false, "rewrite testdata/golden.txt with current findings")

// goldenCapacity is the half-core capacity the golden run lints against —
// the paper's 3K-STE half-core (ap.DefaultConfig).
const goldenCapacity = 3000

// goldenTargets builds every network the golden file covers, in a fixed
// order: the 26 suite applications, then the example networks.
func goldenTargets(t *testing.T) []struct {
	name string
	net  *automata.Network
} {
	t.Helper()
	var out []struct {
		name string
		net  *automata.Network
	}
	add := func(name string, net *automata.Network) {
		out = append(out, struct {
			name string
			net  *automata.Network
		}{name, net})
	}
	cfg := workloads.Config{Divisor: 8, InputLen: 1024, Seed: 1}
	for _, name := range workloads.Names() {
		app, err := workloads.Build(name, cfg)
		if err != nil {
			t.Fatalf("build %s: %v", name, err)
		}
		add(app.Abbr, app.Net)
	}
	add("example/quickstart", quickstartNet(t))
	add("example/virusscan", virusscanNet(t))
	add("example/netids", netidsNet(t))
	add("example/motif", motifNet())
	return out
}

// quickstartNet mirrors examples/quickstart.
func quickstartNet(t *testing.T) *automata.Network {
	net, err := sparseap.CompileRegex([]string{
		"error [0-9]{3}",
		"timeout after [0-9]+ms",
		"panic: .{1,20}overflow",
	})
	if err != nil {
		t.Fatal(err)
	}
	return net
}

// virusscanNet mirrors the signature database of examples/virusscan
// (seed 42, 400 hex signatures with occasional .* gaps).
func virusscanNet(t *testing.T) *automata.Network {
	r := rand.New(rand.NewSource(42))
	signature := func(n int) string {
		var b strings.Builder
		for i := 0; i < n; i++ {
			if i > 0 && i%64 == 0 && r.Intn(4) == 0 {
				b.WriteString(".*")
			}
			fmt.Fprintf(&b, "\\x%02x", 0x80+r.Intn(0x80))
		}
		return b.String()
	}
	sigs := make([]string, 400)
	for i := range sigs {
		sigs[i] = signature(60 + r.Intn(140))
	}
	net, err := sparseap.CompileRegex(sigs)
	if err != nil {
		t.Fatal(err)
	}
	return net
}

// netidsNet mirrors the rule set of examples/netids (seed 7, 300 rules).
func netidsNet(t *testing.T) *automata.Network {
	methods := []string{"GET ", "POST", "PUT ", "HEAD"}
	r := rand.New(rand.NewSource(7))
	rule := func() string {
		var b strings.Builder
		b.WriteString(strings.ReplaceAll(methods[r.Intn(len(methods))], " ", "\\x20"))
		b.WriteString("[a-z/]{4,12}")
		for i := 0; i < 4+r.Intn(8); i++ {
			b.WriteByte(byte('a' + r.Intn(26)))
		}
		return b.String()
	}
	rules := make([]string, 300)
	for i := range rules {
		rules[i] = rule()
	}
	net, err := sparseap.CompileRegex(rules)
	if err != nil {
		t.Fatal(err)
	}
	return net
}

// motifNet mirrors the motif database of examples/motif (seed 11, 60
// Hamming automata of length 20 at distance 2).
func motifNet() *automata.Network {
	r := rand.New(rand.NewSource(11))
	bases := []byte("ACGT")
	nfas := make([]*sparseap.NFA, 60)
	for i := range nfas {
		m := make([]byte, 20)
		for k := range m {
			m[k] = bases[r.Intn(4)]
		}
		nfas[i] = sparseap.HammingNFA(m, 2)
	}
	return sparseap.NewNetwork(nfas...)
}

// renderLine formats one golden line: "NAME clean" or "NAME AP005=6 …".
func renderLine(name string, counts map[string]int) string {
	if len(counts) == 0 {
		return name + " clean"
	}
	codes := make([]string, 0, len(counts))
	for c := range counts {
		codes = append(codes, c)
	}
	sort.Strings(codes)
	parts := []string{name}
	for _, c := range codes {
		parts = append(parts, fmt.Sprintf("%s=%d", c, counts[c]))
	}
	return strings.Join(parts, " ")
}

func TestGoldenDiagnostics(t *testing.T) {
	if testing.Short() {
		t.Skip("golden run builds the full suite")
	}
	var lines []string
	for _, tgt := range goldenTargets(t) {
		res := lint.Run(tgt.net, lint.Options{Capacity: goldenCapacity})
		if len(res.Skipped) > 0 {
			t.Errorf("%s: analyzers skipped (structurally unsound network): %v", tgt.name, res.Skipped)
		}
		if err := res.Err(); err != nil {
			t.Errorf("%s: error-severity findings: %v", tgt.name, err)
		}
		lines = append(lines, renderLine(tgt.name, res.Counts()))
	}
	got := strings.Join(lines, "\n") + "\n"

	path := filepath.Join("testdata", "golden.txt")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s", path)
		return
	}
	wantB, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden file (regenerate with -update): %v", err)
	}
	want := string(wantB)
	if got == want {
		return
	}
	// Line-oriented diff so a generator change reads as one clear line.
	gotL, wantL := strings.Split(got, "\n"), strings.Split(want, "\n")
	for i := 0; i < len(gotL) || i < len(wantL); i++ {
		var g, w string
		if i < len(gotL) {
			g = gotL[i]
		}
		if i < len(wantL) {
			w = wantL[i]
		}
		if g != w {
			t.Errorf("golden mismatch:\n  got  %q\n  want %q", g, w)
		}
	}
}
