package lint

import (
	"testing"

	"sparseap/internal/automata"
	"sparseap/internal/symset"
)

// Edge-case coverage for the Pass memoized graph analyses.

func TestReachCoReachEmptyNetwork(t *testing.T) {
	p := &Pass{Net: &automata.Network{}}
	if got := p.Reach(); len(got) != 0 {
		t.Errorf("Reach on empty network = %v, want empty", got)
	}
	if got := p.CoReach(); len(got) != 0 {
		t.Errorf("CoReach on empty network = %v, want empty", got)
	}
}

func TestReachCoReachSingleAllInputStart(t *testing.T) {
	m := automata.NewNFA()
	m.Add(symset.Single('a'), automata.StartAllInput, true)
	p := &Pass{Net: automata.NewNetwork(m)}
	if r := p.Reach(); len(r) != 1 || !r[0] {
		t.Errorf("Reach = %v, want the lone start reachable", p.Reach())
	}
	if c := p.CoReach(); len(c) != 1 || !c[0] {
		t.Errorf("CoReach = %v, want the reporting start co-reachable", p.CoReach())
	}
}

func TestReachCoReachReportOnlyNFA(t *testing.T) {
	// Every state reports; none is a start. Nothing is reachable, but
	// everything co-reaches (each state IS a reporting state).
	m := automata.NewNFA()
	a := m.Add(symset.Single('a'), automata.StartNone, true)
	b := m.Add(symset.Single('b'), automata.StartNone, true)
	m.Connect(a, b)
	p := &Pass{Net: automata.NewNetwork(m)}
	for s, ok := range p.Reach() {
		if ok {
			t.Errorf("Reach[%d] = true, want false (no start states)", s)
		}
	}
	for s, ok := range p.CoReach() {
		if !ok {
			t.Errorf("CoReach[%d] = false, want true (state reports itself)", s)
		}
	}
}

func TestReachCoReachCycleWithoutReportPath(t *testing.T) {
	// start -> u <-> v cycle with no reporting state anywhere: all
	// reachable, none co-reachable.
	m := automata.NewNFA()
	s0 := m.Add(symset.Single('a'), automata.StartAllInput, false)
	u := m.Add(symset.Single('b'), automata.StartNone, false)
	v := m.Add(symset.Single('c'), automata.StartNone, false)
	m.Connect(s0, u)
	m.Connect(u, v)
	m.Connect(v, u)
	p := &Pass{Net: automata.NewNetwork(m)}
	for s, ok := range p.Reach() {
		if !ok {
			t.Errorf("Reach[%d] = false, want true", s)
		}
	}
	for s, ok := range p.CoReach() {
		if ok {
			t.Errorf("CoReach[%d] = true, want false (no reporting state exists)", s)
		}
	}
	// Memoization must return the identical slices.
	if &p.Reach()[0] != &p.reach[0] || &p.CoReach()[0] != &p.coreach[0] {
		t.Error("Reach/CoReach must memoize")
	}
}

// Satellite of the determinism guarantee: Run must emit diagnostics in
// (NFA, state, code) order, and two runs must agree byte for byte.
func TestDiagnosticOrderDeterministic(t *testing.T) {
	net := semNet()
	opts := Options{Alphabet: symset.Range('a', 'z'), Capacity: 2}
	res := Run(net, opts)
	if len(res.Diags) < 3 {
		t.Fatalf("fixture too quiet for an ordering test: %v", res.Diags)
	}
	for i := 1; i < len(res.Diags); i++ {
		a, b := res.Diags[i-1], res.Diags[i]
		if a.NFA > b.NFA ||
			(a.NFA == b.NFA && a.State > b.State) ||
			(a.NFA == b.NFA && a.State == b.State && a.Code > b.Code) {
			t.Fatalf("diagnostics out of (NFA, state, code) order at %d: %v then %v", i, a, b)
		}
	}
	again := Run(net, opts)
	if len(again.Diags) != len(res.Diags) {
		t.Fatalf("run-to-run diag count differs: %d vs %d", len(again.Diags), len(res.Diags))
	}
	for i := range res.Diags {
		if res.Diags[i].String() != again.Diags[i].String() {
			t.Fatalf("run-to-run diag %d differs:\n  %s\n  %s", i, res.Diags[i], again.Diags[i])
		}
	}
}
