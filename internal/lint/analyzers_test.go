package lint

import (
	"strings"
	"testing"

	"sparseap/internal/automata"
	"sparseap/internal/symset"
)

// chainNFA builds a linear NFA matching the given symbols: all-input start
// on the first state, report on the last.
func chainNFA(symbols string) *automata.NFA {
	m := automata.NewNFA()
	for i := 0; i < len(symbols); i++ {
		kind := automata.StartNone
		if i == 0 {
			kind = automata.StartAllInput
		}
		m.Add(symset.Single(symbols[i]), kind, i == len(symbols)-1)
	}
	for i := 0; i+1 < len(symbols); i++ {
		m.Connect(automata.StateID(i), automata.StateID(i+1))
	}
	return m
}

// codes returns the distinct diagnostic codes of a result.
func codes(r *Result) map[string]int { return r.Counts() }

// wantCode asserts at least one diagnostic with the code exists.
func wantCode(t *testing.T, r *Result, code string) {
	t.Helper()
	if codes(r)[code] == 0 {
		t.Errorf("expected a %s diagnostic, got %v", code, r.Diags)
	}
}

// wantNoCode asserts no diagnostic with the code exists.
func wantNoCode(t *testing.T, r *Result, code string) {
	t.Helper()
	if n := codes(r)[code]; n > 0 {
		t.Errorf("expected no %s diagnostics, got %d: %v", code, n, r.Diags)
	}
}

func TestCleanChainHasNoFindings(t *testing.T) {
	net := automata.NewNetwork(chainNFA("abc"), chainNFA("xy"))
	res := Run(net, Options{Capacity: 100})
	if len(res.Diags) != 0 {
		t.Fatalf("clean network produced diagnostics: %v", res.Diags)
	}
	if len(res.Skipped) != 0 {
		t.Fatalf("clean network skipped analyzers: %v", res.Skipped)
	}
}

func TestAP001OutOfRangeSuccessor(t *testing.T) {
	net := automata.NewNetwork(chainNFA("ab"))
	net.States[0].Succ = append(net.States[0].Succ, 99)
	res := Run(net, Options{})
	wantCode(t, res, "AP001")
	// Edge-traversing analyzers must be skipped, not crash.
	if len(res.Skipped) == 0 {
		t.Errorf("expected NeedsSound analyzers to be skipped on an unsound network")
	}
	if res.Err() == nil {
		t.Errorf("Err() should be non-nil with an AP001 error present")
	}
}

func TestAP001CrossNFAEdge(t *testing.T) {
	net := automata.NewNetwork(chainNFA("ab"), chainNFA("cd"))
	net.States[1].Succ = append(net.States[1].Succ, 2) // NFA 0 -> NFA 1
	res := Run(net, Options{})
	wantCode(t, res, "AP001")
}

func TestAP001BrokenOffsets(t *testing.T) {
	net := automata.NewNetwork(chainNFA("ab"))
	net.Offsets[len(net.Offsets)-1] = 7
	res := Run(net, Options{})
	wantCode(t, res, "AP001")
}

func TestAP002NoStartState(t *testing.T) {
	m := automata.NewNFA()
	m.Add(symset.Single('a'), automata.StartNone, true)
	net := automata.NewNetwork(m)
	res := Run(net, Options{})
	wantCode(t, res, "AP002")
}

func TestAP003EmptySymbolSet(t *testing.T) {
	m := chainNFA("ab")
	m.States[1].Match = symset.Empty()
	net := automata.NewNetwork(m)
	res := Run(net, Options{})
	wantCode(t, res, "AP003")
}

func TestAP004DuplicateEdge(t *testing.T) {
	m := chainNFA("ab")
	m.Connect(0, 1) // second copy of 0->1
	net := automata.NewNetwork(m)
	res := Run(net, Options{})
	wantCode(t, res, "AP004")
	if n := codes(res)["AP004"]; n != 1 {
		t.Errorf("duplicate target should be reported once, got %d", n)
	}
}

func TestAP005Unreachable(t *testing.T) {
	m := chainNFA("ab")
	// A floating state with no predecessors and no start marking.
	orphan := m.Add(symset.Single('z'), automata.StartNone, false)
	m.Connect(orphan, 1) // give it an outgoing edge so only AP005 fires on it
	net := automata.NewNetwork(m)
	res := Run(net, Options{})
	wantCode(t, res, "AP005")
}

func TestAP006DeadEnd(t *testing.T) {
	m := chainNFA("ab")
	sink := m.Add(symset.Single('z'), automata.StartNone, false)
	m.Connect(0, sink) // reachable, but reports nothing and leads nowhere
	net := automata.NewNetwork(m)
	res := Run(net, Options{})
	wantCode(t, res, "AP006")
	wantNoCode(t, res, "AP005")
}

func TestAP007StartWithoutReport(t *testing.T) {
	m := automata.NewNFA()
	a := m.Add(symset.Single('a'), automata.StartAllInput, false)
	b := m.Add(symset.Single('b'), automata.StartNone, false)
	m.Connect(a, b)
	net := automata.NewNetwork(m)
	res := Run(net, Options{})
	wantCode(t, res, "AP007")
}

func TestAP008MixedStartKinds(t *testing.T) {
	m := automata.NewNFA()
	a := m.Add(symset.Single('a'), automata.StartAllInput, false)
	b := m.Add(symset.Single('b'), automata.StartOfData, false)
	r := m.Add(symset.Single('c'), automata.StartNone, true)
	m.Connect(a, r)
	m.Connect(b, r)
	net := automata.NewNetwork(m)
	res := Run(net, Options{})
	wantCode(t, res, "AP008")
}

func TestAP008InvalidStartKind(t *testing.T) {
	m := chainNFA("ab")
	m.States[0].Start = automata.StartKind(9)
	net := automata.NewNetwork(m)
	res := Run(net, Options{})
	wantCode(t, res, "AP008")
	found := false
	for _, d := range res.Diags {
		if d.Code == "AP008" && d.Severity == Error {
			found = true
		}
	}
	if !found {
		t.Errorf("invalid start kind should be error severity: %v", res.Diags)
	}
}

func TestAP009CapacityExceeded(t *testing.T) {
	net := automata.NewNetwork(chainNFA("abcdef"))
	res := Run(net, Options{Capacity: 3})
	wantCode(t, res, "AP009")
	// Disabled when capacity is zero.
	res = Run(net, Options{})
	wantNoCode(t, res, "AP009")
}

func TestAP010RedundantStates(t *testing.T) {
	m := automata.NewNFA()
	a := m.Add(symset.Single('a'), automata.StartAllInput, false)
	b1 := m.Add(symset.Single('b'), automata.StartNone, false)
	b2 := m.Add(symset.Single('b'), automata.StartNone, false) // twin of b1
	r := m.Add(symset.Single('c'), automata.StartNone, true)
	m.Connect(a, b1)
	m.Connect(a, b2)
	m.Connect(b1, r)
	m.Connect(b2, r)
	net := automata.NewNetwork(m)
	res := Run(net, Options{})
	wantCode(t, res, "AP010")
	if n := codes(res)["AP010"]; n != 1 {
		t.Errorf("a twin pair should yield exactly one finding, got %d", n)
	}
}

func TestAP010NeverMergesReportingStates(t *testing.T) {
	m := automata.NewNFA()
	a := m.Add(symset.Single('a'), automata.StartAllInput, false)
	r1 := m.Add(symset.Single('b'), automata.StartNone, true)
	r2 := m.Add(symset.Single('b'), automata.StartNone, true)
	m.Connect(a, r1)
	m.Connect(a, r2)
	net := automata.NewNetwork(m)
	res := Run(net, Options{})
	wantNoCode(t, res, "AP010")
}

func TestDiagnosticString(t *testing.T) {
	d := Diagnostic{Code: "AP005", Severity: Warning, NFA: 3, State: 17,
		Name: "foo", Msg: "unreachable", Fix: "prune it"}
	got := d.String()
	for _, want := range []string{"AP005", "warning", "nfa 3", "state 17", `"foo"`, "unreachable", "fix: prune it"} {
		if !strings.Contains(got, want) {
			t.Errorf("String() = %q, missing %q", got, want)
		}
	}
}
