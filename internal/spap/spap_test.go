package spap

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"sparseap/internal/ap"
	"sparseap/internal/automata"
	"sparseap/internal/hotcold"
	"sparseap/internal/regexc"
	"sparseap/internal/sim"
	"sparseap/internal/symset"
)

func cfgWithCapacity(c int) ap.Config {
	return ap.DefaultConfig().WithCapacity(c)
}

// sortedReports canonicalizes a report list for equality comparison.
func sortedReports(rs []sim.Report) []sim.Report {
	out := append([]sim.Report(nil), rs...)
	sort.Slice(out, func(a, b int) bool {
		if out[a].Pos != out[b].Pos {
			return out[a].Pos < out[b].Pos
		}
		return out[a].State < out[b].State
	})
	return out
}

func reportsEqual(a, b []sim.Report) bool {
	if len(a) != len(b) {
		return false
	}
	a, b = sortedReports(a), sortedReports(b)
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// buildPartition partitions net at the profiled layers for profInput.
func buildPartition(t *testing.T, net *automata.Network, profInput []byte) *hotcold.Partition {
	t.Helper()
	p, err := hotcold.BuildFromProfile(net, profInput, hotcold.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestReportEquivalenceSimpleChain(t *testing.T) {
	net, err := regexc.CompileAll([]string{"abcde"}, regexc.Options{})
	if err != nil {
		t.Fatal(err)
	}
	input := []byte("ab abcde xx abcde")
	// Profile with a prefix that only sees "ab": deep states predicted cold.
	p := buildPartition(t, net, input[:2])
	if p.Cold.Len() == 0 {
		t.Fatal("test needs a nonempty cold set")
	}
	baseline := sim.Run(net, input, sim.Options{CollectReports: true})
	res, err := RunBaseAPSpAP(p, input, cfgWithCapacity(100), Options{CollectReports: true})
	if err != nil {
		t.Fatal(err)
	}
	if !reportsEqual(baseline.Reports, res.Reports) {
		t.Fatalf("reports differ:\nbaseline %v\npartitioned %v", baseline.Reports, res.Reports)
	}
	if res.IntermediateReports == 0 {
		t.Fatal("expected intermediate reports from mis-predictions")
	}
}

func TestNoIntermediateReportsSkipsSpAP(t *testing.T) {
	net, err := regexc.CompileAll([]string{"abcd"}, regexc.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Profile on the full input: prediction is perfect, SpAP never runs.
	input := []byte("abcq abcq")
	p := buildPartition(t, net, input)
	res, err := RunBaseAPSpAP(p, input, cfgWithCapacity(100), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.IntermediateReports != 0 || res.SpAPExecutions != 0 || res.SpAPCycles != 0 {
		t.Fatalf("unexpected SpAP activity: %+v", res)
	}
	if !math.IsNaN(res.JumpRatio) {
		t.Fatal("jump ratio should be NaN when SpAP never ran")
	}
}

func TestJumpSkipsIdleRegions(t *testing.T) {
	// One deep pattern; a single late mis-prediction. SpAP must jump
	// directly to the report position rather than streaming the prefix.
	net, err := regexc.CompileAll([]string{"xyzw"}, regexc.Options{})
	if err != nil {
		t.Fatal(err)
	}
	input := make([]byte, 1000)
	for i := range input {
		input[i] = '.'
	}
	copy(input[990:], []byte("xyzw"))
	p := buildPartition(t, net, input[:10]) // profile sees only dots
	res, err := RunBaseAPSpAP(p, input, cfgWithCapacity(100), Options{CollectReports: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.SpAPExecutions != 1 {
		t.Fatalf("SpAP executions = %d", res.SpAPExecutions)
	}
	if res.SpAPCycles >= 100 {
		t.Fatalf("SpAP cycles = %d, expected a short jumped run", res.SpAPCycles)
	}
	if res.JumpRatio < 0.9 {
		t.Fatalf("jump ratio = %v, want > 0.9", res.JumpRatio)
	}
	baseline := sim.Run(net, input, sim.Options{CollectReports: true})
	if !reportsEqual(baseline.Reports, res.Reports) {
		t.Fatal("reports differ")
	}
}

func TestEnableStallsOnSimultaneousReports(t *testing.T) {
	// Two NFAs whose cut states activate at the same position: the second
	// enable in the same cycle stalls the pipeline.
	net, err := regexc.CompileAll([]string{"ab", "a[bc]"}, regexc.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// The layer-2 states are cold under a profile that never sees 'a';
	// on "ab" both intermediates then fire at the same position.
	input := []byte("aXab ab ac")
	p := buildPartition(t, net, []byte("XX"))
	if p.Cold.Len() != 2 {
		t.Fatalf("cold states = %d, want 2", p.Cold.Len())
	}
	res, err := RunBaseAPSpAP(p, input, cfgWithCapacity(100), Options{CollectReports: true})
	if err != nil {
		t.Fatal(err)
	}
	// Both intermediates (b-target and c-target) fire at every position
	// after an 'a': positions 1,3,5,7 in "aXaXab ac".
	if res.IntermediateReports == 0 {
		t.Fatal("expected intermediate reports")
	}
	if res.EnableStalls == 0 {
		t.Fatal("expected enable stalls from simultaneous reports")
	}
	baseline := sim.Run(net, input, sim.Options{CollectReports: true})
	if !reportsEqual(baseline.Reports, res.Reports) {
		t.Fatal("reports differ")
	}
}

func TestColdBatchRouting(t *testing.T) {
	// Many small NFAs whose cold fragments exceed one batch: reports must
	// be routed to the right batch and every batch with reports executes.
	patterns := make([]string, 12)
	for i := range patterns {
		patterns[i] = "ab" + string(rune('c'+i%3)) + "d"
	}
	net, err := regexc.CompileAll(patterns, regexc.Options{})
	if err != nil {
		t.Fatal(err)
	}
	input := []byte("abcd abdd abed abcd")
	p := buildPartition(t, net, input[:2])
	cfg := cfgWithCapacity(26) // hot fits; cold (24 states) needs >1 batch? cold per NFA = 2, 12 NFAs = 24 -> 1 batch of 24 fits 26; shrink:
	cfg = cfgWithCapacity(10)
	res, err := RunBaseAPSpAP(p, input, cfg, Options{CollectReports: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.ColdBatches < 2 {
		t.Fatalf("cold batches = %d, want >= 2", res.ColdBatches)
	}
	baseline := sim.Run(net, input, sim.Options{CollectReports: true})
	if !reportsEqual(baseline.Reports, res.Reports) {
		t.Fatal("reports differ across batched SpAP execution")
	}
}

func TestAPCPUEquivalenceAndCost(t *testing.T) {
	net, err := regexc.CompileAll([]string{"abcde", "xyz"}, regexc.Options{})
	if err != nil {
		t.Fatal(err)
	}
	input := []byte("ab abcde xyz abcde")
	p := buildPartition(t, net, input[:3])
	cpu := DefaultCPUModel()
	res, err := RunAPCPU(p, input, cfgWithCapacity(100), cpu, Options{CollectReports: true})
	if err != nil {
		t.Fatal(err)
	}
	baseline := sim.Run(net, input, sim.Options{CollectReports: true})
	if !reportsEqual(baseline.Reports, res.Reports) {
		t.Fatal("AP-CPU reports differ")
	}
	if res.IntermediateReports > 0 && res.CPUTimeNS <= 0 {
		t.Fatal("CPU time not accounted")
	}
	if res.SpAPCycles != 0 {
		t.Fatal("AP-CPU must not use SpAP cycles")
	}
	wantMin := float64(res.IntermediateReports) * cpu.DispatchNS
	if res.CPUTimeNS < wantMin {
		t.Fatalf("CPU time %v below dispatch floor %v", res.CPUTimeNS, wantMin)
	}
}

func TestBatchCountsMatchModel(t *testing.T) {
	// 10 NFAs × 10 states on a 25-capacity AP: baseline 4 batches. With a
	// perfect profile keeping 2 states per NFA (20 total + intermediates),
	// BaseAP needs 1 batch.
	patterns := make([]string, 10)
	for i := range patterns {
		patterns[i] = "ab War and Peace"[:10] // "ab War and" 10 chars
	}
	net, err := regexc.CompileAll(patterns, regexc.Options{})
	if err != nil {
		t.Fatal(err)
	}
	input := []byte("ab ab ab")
	p := buildPartition(t, net, input)
	res, err := RunBaseAPSpAP(p, input, cfgWithCapacity(50), Options{})
	if err != nil {
		t.Fatal(err)
	}
	base, _, err := ap.BaselineCycles(net, len(input), 50)
	if err != nil {
		t.Fatal(err)
	}
	if base != 2 {
		t.Fatalf("baseline batches = %d, want 2", base)
	}
	if res.BaseAPBatches != 1 {
		t.Fatalf("BaseAP batches = %d, want 1", res.BaseAPBatches)
	}
	if res.TotalCycles >= int64(base)*int64(len(input)) {
		t.Fatal("partitioned execution not faster despite fitting in one batch")
	}
}

func TestEnablePortsReduceStalls(t *testing.T) {
	// Three rules share the same cut-firing position: with one port, two
	// stalls per burst; with four ports, none.
	net, err := regexc.CompileAll([]string{"ab", "a[bc]", "a[bd]"}, regexc.Options{})
	if err != nil {
		t.Fatal(err)
	}
	input := []byte("XaXb ab ab")
	p := buildPartition(t, net, []byte("XX"))
	run := func(ports int) *Result {
		cfg := cfgWithCapacity(100)
		cfg.EnablePorts = ports
		res, err := RunBaseAPSpAP(p, input, cfg, Options{CollectReports: true})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	one := run(1)
	four := run(4)
	if one.EnableStalls == 0 {
		t.Fatal("expected stalls with one port")
	}
	if four.EnableStalls != 0 {
		t.Fatalf("stalls with four ports = %d", four.EnableStalls)
	}
	if one.TotalCycles <= four.TotalCycles {
		// stalls must cost cycles
		t.Fatalf("port widening did not reduce cycles: %d vs %d", one.TotalCycles, four.TotalCycles)
	}
	if !reportsEqual(one.Reports, four.Reports) {
		t.Fatal("port width changed reports")
	}
	// Two ports: ceil(3/2)-1 = 1 stall per 3-wide burst.
	two := run(2)
	if two.EnableStalls == 0 || two.EnableStalls >= one.EnableStalls {
		t.Fatalf("two-port stalls = %d (one-port %d)", two.EnableStalls, one.EnableStalls)
	}
}

func TestSpAPBatchCyclesRecorded(t *testing.T) {
	net, err := regexc.CompileAll([]string{"abcd", "abce"}, regexc.Options{})
	if err != nil {
		t.Fatal(err)
	}
	input := []byte("abcd abce abcd")
	p := buildPartition(t, net, []byte("XX"))
	res, err := RunBaseAPSpAP(p, input, cfgWithCapacity(100), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.SpAPBatchCycles) != res.SpAPExecutions {
		t.Fatalf("batch cycles %d entries, executions %d", len(res.SpAPBatchCycles), res.SpAPExecutions)
	}
	var sum int64
	for _, c := range res.SpAPBatchCycles {
		sum += c
	}
	if sum != res.SpAPCycles {
		t.Fatalf("batch cycles sum %d != SpAPCycles %d", sum, res.SpAPCycles)
	}
}

// randomApp builds a random multi-NFA application plus an input whose
// prefix/full split exercises mis-predictions.
func randomApp(r *rand.Rand) (*automata.Network, []byte) {
	var nfas []*automata.NFA
	alphabet := []byte("abcd")
	for u := 0; u < 1+r.Intn(5); u++ {
		n := 2 + r.Intn(8)
		m := automata.NewNFA()
		for s := 0; s < n; s++ {
			var set symset.Set
			for k := 0; k <= r.Intn(2); k++ {
				set.Add(alphabet[r.Intn(len(alphabet))])
			}
			start := automata.StartNone
			if s == 0 {
				if r.Intn(4) == 0 {
					start = automata.StartOfData
				} else {
					start = automata.StartAllInput
				}
			}
			m.Add(set, start, r.Intn(3) == 0)
		}
		for e := 0; e < 1+r.Intn(2*n); e++ {
			u := r.Intn(n)
			v := r.Intn(n)
			if v == 0 {
				v = 1 % n // avoid edges into the start state: keeps starts in layer 1
			}
			m.Connect(automata.StateID(u), automata.StateID(v))
		}
		m.Dedup()
		nfas = append(nfas, m)
	}
	net := automata.NewNetwork(nfas...)
	input := make([]byte, 10+r.Intn(120))
	for i := range input {
		input[i] = alphabet[r.Intn(len(alphabet))]
	}
	return net, input
}

// Property (DESIGN.md invariant 1): for random applications, random inputs
// and random profile prefixes, the combined BaseAP+SpAP report multiset
// equals the baseline full-NFA report multiset — under any capacity.
func TestPropReportEquivalence(t *testing.T) {
	r := rand.New(rand.NewSource(7031))
	for trial := 0; trial < 80; trial++ {
		net, input := randomApp(r)
		prefix := 1 + r.Intn(len(input))
		p, err := hotcold.BuildFromProfile(net, input[:prefix], hotcold.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if err := p.CheckInvariants(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		capacity := 2 + r.Intn(net.Len()+4)
		// Capacity must fit the largest hot NFA fragment; widen if needed.
		maxFrag := 0
		for i := 0; i < p.Hot.NumNFAs(); i++ {
			if s := p.Hot.NFASize(i); s > maxFrag {
				maxFrag = s
			}
		}
		if capacity < maxFrag {
			capacity = maxFrag
		}
		baseline := sim.Run(net, input, sim.Options{CollectReports: true})
		res, err := RunBaseAPSpAP(p, input, cfgWithCapacity(capacity), Options{CollectReports: true})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !reportsEqual(baseline.Reports, res.Reports) {
			t.Fatalf("trial %d: BaseAP/SpAP reports differ from baseline\nnet states=%d prefix=%d capacity=%d",
				trial, net.Len(), prefix, capacity)
		}
		cpuRes, err := RunAPCPU(p, input, cfgWithCapacity(capacity), DefaultCPUModel(), Options{CollectReports: true})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !reportsEqual(baseline.Reports, cpuRes.Reports) {
			t.Fatalf("trial %d: AP-CPU reports differ from baseline", trial)
		}
	}
}

// Property: SpAP cycles never exceed executions × input length (jump never
// makes things worse than streaming), and JumpRatio is consistent.
func TestPropSpAPCycleBounds(t *testing.T) {
	r := rand.New(rand.NewSource(808))
	for trial := 0; trial < 40; trial++ {
		net, input := randomApp(r)
		prefix := 1 + r.Intn(len(input)/2+1)
		p, err := hotcold.BuildFromProfile(net, input[:prefix], hotcold.Options{})
		if err != nil {
			t.Fatal(err)
		}
		res, err := RunBaseAPSpAP(p, input, cfgWithCapacity(net.Len()+8), Options{})
		if err != nil {
			t.Fatal(err)
		}
		if res.SpAPExecutions == 0 {
			continue
		}
		maxCycles := int64(res.SpAPExecutions)*int64(len(input)) + res.EnableStalls
		if res.SpAPCycles > maxCycles {
			t.Fatalf("trial %d: SpAP cycles %d exceed bound %d", trial, res.SpAPCycles, maxCycles)
		}
		want := 1 - float64(res.SpAPProcessed)/(float64(res.SpAPExecutions)*float64(len(input)))
		if math.Abs(res.JumpRatio-want) > 1e-12 {
			t.Fatalf("trial %d: jump ratio %v, want %v", trial, res.JumpRatio, want)
		}
	}
}
