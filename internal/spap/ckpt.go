// Checkpointed, crash-resumable execution of the BaseAP/SpAP system.
//
// The plain executors (RunBaseAPSpAP, RunGuarded) re-stream the whole
// input from symbol 0 on any interruption. The checkpointed variants here
// run the same algorithms as an explicit phase machine whose complete
// dynamic state — engine snapshot, intermediate-report list, per-batch
// cursors, watchdog counters, guard ladder position, and the accumulated
// Result — serializes into one checkpoint record. A run killed at any
// point resumes from the newest valid record: mid-attempt in BaseAP mode,
// mid-batch in SpAP mode, or mid-stream in the baseline fallback, instead
// of starting over.
//
// Exactly-once report delivery follows from the prefix property of engine
// snapshots (see internal/sim/snapshot.go): a checkpoint taken before
// processing position P persists exactly the reports for positions < P
// inside Result.Reports, and the engine re-runs deterministically from P,
// so the resumed stream is bit-identical to an uninterrupted run — no
// duplicated and no lost reports across the boundary. Phase transitions
// and batch completions are checkpointed atomically (write-rename in the
// store), so a crash between saves merely repeats work, never corrupts
// state.
//
// An uninterrupted checkpointed run returns exactly what the plain
// executor returns (same counters, same report order); the equivalence is
// locked in by tests and the chaos soak harness.
package spap

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"

	"sparseap/internal/ap"
	"sparseap/internal/automata"
	"sparseap/internal/checkpoint"
	"sparseap/internal/fault"
	"sparseap/internal/hotcold"
	"sparseap/internal/sim"
)

// spapStateVersion versions the serialized phase-machine state. Bump on
// any layout change; Load rejects other versions with ErrMismatch.
const spapStateVersion = 1

// Execution phases of the checkpointed state machine, in ladder order.
const (
	ckPhaseBase     uint8 = iota // BaseAP mode over the hot network
	ckPhaseCold                  // SpAP mode over the cold network, batch by batch
	ckPhaseFallback              // guard's whole-network baseline fallback
	ckPhaseDone                  // finished; the record holds the final result
)

// phaseName renders a phase for ResumeStats.
func phaseName(p uint8) string {
	switch p {
	case ckPhaseBase:
		return "baseap"
	case ckPhaseCold:
		return "spap"
	case ckPhaseFallback:
		return "fallback"
	case ckPhaseDone:
		return "done"
	}
	return fmt.Sprintf("phase%d", p)
}

// ResumeStats records checkpoint/resume bookkeeping of a checkpointed run.
type ResumeStats struct {
	// Resumed reports whether the run continued from a stored checkpoint.
	Resumed bool
	// Phase names the phase the run resumed into ("" when not resumed).
	Phase string
	// Pos is the input position within that phase's stream at resume.
	Pos int64
	// Recovered reports whether the latest checkpoint slot was corrupt
	// and the run fell back to the previous good one.
	Recovered bool
	// Saves counts checkpoints persisted during this call.
	Saves int64
}

// ckState is the complete resumable state of a checkpointed run. Every
// field that influences the remaining execution is here; nothing else is
// consulted on resume (the partition is rebuilt deterministically from K).
type ckState struct {
	phase   uint8
	guarded bool

	// Guard ladder: current partition layers (nil = the caller's
	// partition), guard statistics, and fault counters accumulated from
	// aborted attempts.
	k   []int32
	gs  GuardStats
	acc fault.Stats

	// Watchdog counters of the in-flight BaseAP attempt.
	wdStalls   int64
	wdFirstPos int64
	wdHist     []int64

	// Stream progress of the current phase: next input position and the
	// engine snapshot to resume from (meaningful when pos > 0 or, in the
	// cold phase, when inBatch is set).
	pos     int64
	snap    sim.Snapshot
	inBatch bool

	// BaseAP products.
	inter     []IntermediateReport
	interSeen int64 // generated intermediate reports, including dropped

	// Cold-phase bookkeeping: which batches completed, which one is
	// mid-flight, and its report cursor and partial stats.
	coldDone  []bool
	coldCur   int32
	coldJ     int64
	coldStats batchStats

	res Result
}

// encode serializes the state in field order; decode mirrors it exactly.
func (st *ckState) encode(e *checkpoint.Enc) {
	e.U8(st.phase)
	e.Bool(st.guarded)
	e.I32s(st.k)

	e.I64(int64(st.gs.Attempts))
	e.I64(int64(st.gs.Trips))
	e.I64s(st.gs.TripPos)
	e.I64(st.gs.WastedCycles)
	e.Bool(st.gs.Widened)
	e.Bool(st.gs.FallbackBaseline)
	e.I64(int64(st.gs.BatchFallbacks))
	e.I64(st.gs.FallbackCycles)

	e.I64(st.acc.Flips)
	e.I64(st.acc.DroppedReports)
	e.I64(st.acc.ConfigRetries)

	e.I64(st.wdStalls)
	e.I64(st.wdFirstPos)
	e.I64s(st.wdHist)

	e.I64(st.pos)
	st.snap.Encode(e)
	e.Bool(st.inBatch)

	e.U64(uint64(len(st.inter)))
	for _, r := range st.inter {
		e.I64(r.Pos)
		e.I32(int32(r.Target))
	}
	e.I64(st.interSeen)

	e.U64(uint64(len(st.coldDone)))
	for _, d := range st.coldDone {
		e.Bool(d)
	}
	e.I32(st.coldCur)
	e.I64(st.coldJ)
	e.I64(st.coldStats.cycles)
	e.I64(st.coldStats.stalls)
	e.I64(st.coldStats.refills)

	r := &st.res
	e.I64(int64(r.BaseAPBatches))
	e.I64(int64(r.ColdBatches))
	e.I64(int64(r.SpAPExecutions))
	e.I64(r.IntermediateReports)
	e.I64(r.EnableStalls)
	e.I64(r.QueueRefills)
	e.I64(r.BaseAPCycles)
	e.I64(r.SpAPCycles)
	e.I64(r.SpAPProcessed)
	e.I64s(r.SpAPBatchCycles)
	e.F64(r.JumpRatio)
	e.I64(r.NumReports)
	e.U64(uint64(len(r.Reports)))
	for _, rp := range r.Reports {
		e.I64(rp.Pos)
		e.I32(int32(rp.State))
	}
	e.I64(r.Fault.Flips)
	e.I64(r.Fault.DroppedReports)
	e.I64(r.Fault.ConfigRetries)
}

func (st *ckState) decode(payload []byte) error {
	d := checkpoint.NewDec(payload)
	st.phase = d.U8()
	st.guarded = d.Bool()
	st.k = d.I32s()

	st.gs.Attempts = int(d.I64())
	st.gs.Trips = int(d.I64())
	st.gs.TripPos = d.I64s()
	st.gs.WastedCycles = d.I64()
	st.gs.Widened = d.Bool()
	st.gs.FallbackBaseline = d.Bool()
	st.gs.BatchFallbacks = int(d.I64())
	st.gs.FallbackCycles = d.I64()

	st.acc.Flips = d.I64()
	st.acc.DroppedReports = d.I64()
	st.acc.ConfigRetries = d.I64()

	st.wdStalls = d.I64()
	st.wdFirstPos = d.I64()
	st.wdHist = d.I64s()

	st.pos = d.I64()
	if err := st.snap.Decode(d); err != nil {
		return err
	}
	st.inBatch = d.Bool()

	n := d.Len(12)
	st.inter = st.inter[:0]
	for i := 0; i < n && d.Err() == nil; i++ {
		pos := d.I64()
		tgt := automata.StateID(d.I32())
		st.inter = append(st.inter, IntermediateReport{Pos: pos, Target: tgt})
	}
	st.interSeen = d.I64()

	n = d.Len(1)
	st.coldDone = st.coldDone[:0]
	for i := 0; i < n && d.Err() == nil; i++ {
		st.coldDone = append(st.coldDone, d.Bool())
	}
	st.coldCur = d.I32()
	st.coldJ = d.I64()
	st.coldStats.cycles = d.I64()
	st.coldStats.stalls = d.I64()
	st.coldStats.refills = d.I64()

	r := &st.res
	r.BaseAPBatches = int(d.I64())
	r.ColdBatches = int(d.I64())
	r.SpAPExecutions = int(d.I64())
	r.IntermediateReports = d.I64()
	r.EnableStalls = d.I64()
	r.QueueRefills = d.I64()
	r.BaseAPCycles = d.I64()
	r.SpAPCycles = d.I64()
	r.SpAPProcessed = d.I64()
	r.SpAPBatchCycles = d.I64s()
	r.JumpRatio = d.F64()
	r.NumReports = d.I64()
	n = d.Len(12)
	r.Reports = r.Reports[:0]
	for i := 0; i < n && d.Err() == nil; i++ {
		pos := d.I64()
		s := automata.StateID(d.I32())
		r.Reports = append(r.Reports, sim.Report{Pos: pos, State: s})
	}
	r.Fault.Flips = d.I64()
	r.Fault.DroppedReports = d.I64()
	r.Fault.ConfigRetries = d.I64()
	return d.Done()
}

// ckExec drives one checkpointed run.
type ckExec struct {
	ctx   context.Context
	input []byte
	cfg   ap.Config
	opts  Options
	g     *Guard // nil for the unguarded executor
	ck    *checkpoint.Runner
	st    *ckState
	cur   *hotcold.Partition
	enc   checkpoint.Enc
	rs    ResumeStats
}

// save persists the full state through the runner (no-op when disabled).
func (x *ckExec) save() error {
	x.enc.Reset()
	x.st.encode(&x.enc)
	if err := x.ck.Save(spapStateVersion, x.enc.Bytes()); err != nil {
		return err
	}
	if x.ck.Enabled() {
		x.rs.Saves++
	}
	return nil
}

// RunBaseAPSpAPCheckpointed is RunBaseAPSpAPContext with durable
// checkpoints through ck: state is captured every Runner.Every processed
// symbols (and at every phase and batch boundary), and a rerun resumes
// from the newest valid checkpoint with exactly-once report delivery. An
// uninterrupted run returns a Result identical to RunBaseAPSpAPContext
// (plus populated Resume bookkeeping).
func RunBaseAPSpAPCheckpointed(ctx context.Context, p *hotcold.Partition, input []byte, cfg ap.Config, opts Options, ck *checkpoint.Runner) (*Result, error) {
	return runCheckpointed(ctx, p, input, cfg, nil, opts, ck)
}

// RunGuardedCheckpointed is RunGuarded with durable checkpoints: the
// guard ladder (attempt count, widened layers, watchdog counters, batch
// fallbacks) is part of the persisted state, so a run killed mid-attempt,
// mid-batch, or mid-fallback resumes exactly where it was — including
// re-entering BaseAP mode on an already-widened partition.
func RunGuardedCheckpointed(ctx context.Context, p *hotcold.Partition, input []byte, cfg ap.Config, g Guard, opts Options, ck *checkpoint.Runner) (*Result, error) {
	g = g.withDefaults()
	return runCheckpointed(ctx, p, input, cfg, &g, opts, ck)
}

func runCheckpointed(ctx context.Context, p *hotcold.Partition, input []byte, cfg ap.Config, g *Guard, opts Options, ck *checkpoint.Runner) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	x := &ckExec{ctx: ctx, input: input, cfg: cfg, opts: opts, g: g, ck: ck, cur: p}
	st := &ckState{guarded: g != nil, coldCur: -1}
	st.res.JumpRatio = math.NaN()
	if g != nil {
		st.gs.Attempts = 1
	}
	if payload, ver, fellback, err := ck.Load(); err == nil {
		if ver != spapStateVersion {
			return nil, fmt.Errorf("%w: spap state version %d, want %d", checkpoint.ErrMismatch, ver, spapStateVersion)
		}
		if derr := st.decode(payload); derr != nil {
			return nil, derr
		}
		if st.guarded != (g != nil) {
			return nil, fmt.Errorf("%w: checkpoint is for a %s run", checkpoint.ErrMismatch, map[bool]string{true: "guarded", false: "plain"}[st.guarded])
		}
		x.rs = ResumeStats{Resumed: true, Phase: phaseName(st.phase), Pos: st.pos, Recovered: fellback}
		if st.k != nil {
			np, berr := hotcold.Build(p.Net, p.Topo, st.k, hotcold.Options{})
			if berr != nil {
				return nil, fmt.Errorf("spap: rebuilding widened partition: %w", berr)
			}
			x.cur = np
		}
	} else if !errors.Is(err, checkpoint.ErrNoCheckpoint) {
		return nil, err
	}
	x.st = st

	for {
		var err error
		switch st.phase {
		case ckPhaseBase:
			err = x.runBase()
		case ckPhaseCold:
			err = x.runCold()
		case ckPhaseFallback:
			err = x.runFallback()
		case ckPhaseDone:
			return x.finish(nil)
		default:
			return nil, fmt.Errorf("%w: unknown phase %d", checkpoint.ErrMismatch, st.phase)
		}
		if err != nil {
			return x.finish(err)
		}
	}
}

// finish assembles the caller-facing Result from the state machine,
// mirroring the plain executors' epilogues: guarded runs sort the report
// stream (fallback splicing breaks order), fault counters from aborted
// attempts fold in, and the internal report list is trimmed when the
// caller did not ask for it.
func (x *ckExec) finish(runErr error) (*Result, error) {
	st := x.st
	res := &st.res
	if x.g != nil {
		res.Guard = &st.gs
	}
	res.Fault.Add(st.acc)
	// RunGuarded sorts the stream whenever the cold phase ran (fallback
	// splicing breaks order); base-phase and fallback-phase exits leave
	// stream order, which is already (pos, state)-sorted.
	if x.g != nil && (st.phase == ckPhaseCold || st.phase == ckPhaseDone) {
		sortReports(res.Reports)
	}
	rs := x.rs
	res.Resume = &rs
	trimReports(res, x.opts)
	return finalize(res, x.cfg), runErr
}

// resetAttempt zeroes all per-attempt state before a widened retry or the
// baseline fallback; ladder state (k, gs, acc) survives.
func (x *ckExec) resetAttempt() {
	st := x.st
	st.res = Result{JumpRatio: math.NaN()}
	st.inter = nil
	st.interSeen = 0
	st.pos = 0
	st.inBatch = false
	st.coldDone = nil
	st.coldCur = -1
	st.coldJ = 0
	st.coldStats = batchStats{}
	st.wdStalls, st.wdFirstPos, st.wdHist = 0, 0, nil
}

// runBase is runBaseAPMode with checkpoints: the engine snapshot plus the
// intermediate and final report lists are captured every Every symbols,
// so a resumed attempt continues mid-stream. A guarded attempt restores
// its watchdog counters too, keeping trip decisions identical to an
// uninterrupted run.
func (x *ckExec) runBase() error {
	st, res := x.st, &x.st.res
	hotBatches, err := ap.PartitionNFAs(x.cur.Hot, x.cfg.Capacity)
	if err != nil {
		return fmt.Errorf("spap: hot network: %w", err)
	}
	res.BaseAPBatches = len(hotBatches)
	res.JumpRatio = math.NaN()
	inj := x.opts.Faults
	if st.pos == 0 {
		if err := loadConfigs(inj, &res.Fault, 0, len(hotBatches)); err != nil {
			res.BaseAPCycles = 0
			return err
		}
	}
	var wd *watchdog
	if x.g != nil {
		wd = &watchdog{g: *x.g, ports: x.cfg.EnablePorts,
			stalls: st.wdStalls, firstPos: st.wdFirstPos, hist: st.wdHist}
	}
	eng := sim.AcquireEngine(x.cur.Hot, sim.Options{})
	defer eng.Release()
	if st.pos > 0 {
		if err := eng.Restore(&st.snap); err != nil {
			return err
		}
	}
	eng.OnReport = func(pos int64, s automata.StateID) {
		if orig := x.cur.HotOrig[s]; orig != automata.None {
			res.NumReports++
			res.Reports = append(res.Reports, sim.Report{Pos: pos, State: orig})
			return
		}
		idx := st.interSeen
		st.interSeen++
		if inj.DropReport(idx) {
			res.Fault.DroppedReports++
			return
		}
		st.inter = append(st.inter, IntermediateReport{Pos: pos, Target: x.cur.Intermediate[s]})
	}
	active := inj.Active()
	abort := func(processed int64) {
		res.BaseAPCycles = int64(len(hotBatches)) * processed
		res.IntermediateReports = int64(len(st.inter))
	}
	n := int64(len(x.input))
	for i := st.pos; i < n; i++ {
		if x.ck.Due(i) {
			st.pos = i
			eng.Snapshot(&st.snap, i)
			if wd != nil {
				st.wdStalls, st.wdFirstPos, st.wdHist = wd.stalls, wd.firstPos, wd.hist
			}
			if serr := x.save(); serr != nil {
				abort(i)
				return serr
			}
		}
		if cerr := x.ck.Check(i); cerr != nil {
			abort(i)
			return cerr
		}
		if i&(cancelCheckInterval-1) == 0 && cancelled(x.ctx) {
			abort(i)
			return x.ctx.Err()
		}
		if active {
			if s, ok := inj.FlipAt(i, x.cur.Hot.Len()); ok {
				eng.ToggleState(s)
				res.Fault.Flips++
			}
		}
		before := len(st.inter)
		eng.Step(i, x.input[i])
		if wd != nil {
			wd.observe(i+1, len(st.inter)-before, int64(len(st.inter)))
			if wd.isTripped() {
				return x.handleTrip(wd, i+1)
			}
		}
	}
	res.IntermediateReports = int64(len(st.inter))
	res.BaseAPCycles = int64(len(hotBatches)) * n
	// Engine emission is already position-ordered; the stable sort only
	// guards the queue model (same as the plain path).
	sort.SliceStable(st.inter, func(a, b int) bool { return st.inter[a].Pos < st.inter[b].Pos })
	st.phase = ckPhaseCold
	st.pos = 0
	st.inBatch = false
	st.coldCur = -1
	st.wdStalls, st.wdFirstPos, st.wdHist = 0, 0, nil
	return x.save()
}

// handleTrip advances the guard ladder after a watchdog trip: widened
// retry when allowed, baseline fallback otherwise. The new ladder
// position is checkpointed immediately, so a crash right after a trip
// resumes into the correct next stage without repeating the aborted
// attempt.
func (x *ckExec) handleTrip(wd *watchdog, processed int64) error {
	st := x.st
	st.gs.Trips++
	st.gs.TripPos = append(st.gs.TripPos, wd.pos)
	st.gs.WastedCycles += int64(st.res.BaseAPBatches) * processed
	st.acc.Add(st.res.Fault)
	if st.gs.Attempts-1 < x.g.MaxRetries && !wd.hopeless() {
		if np, ok := widenPartition(x.cur, x.g.WidenFactor); ok {
			st.gs.Widened = true
			st.gs.Attempts++
			x.cur = np
			st.k = np.K
			x.resetAttempt()
			return x.save()
		}
	}
	st.gs.FallbackBaseline = true
	st.phase = ckPhaseFallback
	x.resetAttempt()
	return x.save()
}

// runCold is runSpAPMode (with the guarded pre-flight when applicable)
// under checkpoints. Batch completion is the durability unit: coldDone
// marks finished batches, and the in-flight batch checkpoints its engine
// snapshot plus report cursor every Every cycles. Per-batch baseline
// fallbacks are atomic between saves — a crash inside one repeats just
// that batch.
func (x *ckExec) runCold() error {
	st, res := x.st, &x.st.res
	if x.cur.Cold.Len() == 0 {
		st.phase = ckPhaseDone
		return x.save()
	}
	coldBatches, err := ap.PartitionNFAs(x.cur.Cold, x.cfg.Capacity)
	if err != nil {
		return fmt.Errorf("spap: cold network: %w", err)
	}
	res.ColdBatches = len(coldBatches)
	if len(st.inter) == 0 {
		st.phase = ckPhaseDone
		return x.save()
	}
	if len(st.coldDone) != len(coldBatches) {
		st.coldDone = make([]bool, len(coldBatches))
	}
	perBatch := routeReports(x.cur, coldBatches, st.inter)
	var stallCap int64
	if x.g != nil {
		stallCap = int64(x.g.StallBudget * float64(len(x.input)))
	}
	for bi, reports := range perBatch {
		if len(reports) == 0 || st.coldDone[bi] {
			continue
		}
		if cancelled(x.ctx) {
			return x.ctx.Err()
		}
		resuming := st.inBatch && int(st.coldCur) == bi
		if !resuming {
			// The pre-flight is deterministic over the routed list, so a
			// batch that started SpAP execution before a crash passed it
			// and must not re-run it after resume.
			if x.g != nil && predictStalls(reports, x.cfg.EnablePorts) > stallCap {
				if err := batchFallback(x.ctx, x.cur, x.input, x.cfg, x.opts, res, coldBatches[bi], &st.gs); err != nil {
					return err
				}
				st.coldDone[bi] = true
				if err := x.save(); err != nil {
					return err
				}
				continue
			}
			if err := loadConfigs(x.opts.Faults, &res.Fault, res.BaseAPBatches+bi, 1); err != nil {
				return err
			}
			res.SpAPExecutions++
			st.coldCur = int32(bi)
			st.coldJ = 0
			st.coldStats = batchStats{}
			st.pos = 0
			st.inBatch = true
		}
		if err := x.runSpAPBatch(bi, reports, resuming); err != nil {
			return err
		}
		st.coldDone[bi] = true
		st.inBatch = false
		st.pos = 0
		st.coldJ = 0
		st.coldStats = batchStats{}
		if err := x.save(); err != nil {
			return err
		}
	}
	if res.SpAPExecutions > 0 {
		denom := float64(res.SpAPExecutions) * float64(len(x.input))
		res.JumpRatio = 1 - float64(res.SpAPProcessed)/denom
	}
	st.phase = ckPhaseDone
	return x.save()
}

// runSpAPBatch is Algorithm 1 with mid-batch checkpoints: the capture
// cadence counts executed cycles (not input positions — jumps skip those)
// and persists the engine snapshot, the report-list cursor, and the
// partial batch stats. Stats fold into the Result only at completion (or
// into the in-memory partial result on abort), so a mid-batch checkpoint
// never double-counts.
func (x *ckExec) runSpAPBatch(bi int, reports []IntermediateReport, resuming bool) error {
	st, res := x.st, &x.st.res
	eng := sim.AcquireEngine(x.cur.Cold, sim.Options{})
	defer eng.Release()
	if resuming {
		if err := eng.Restore(&st.snap); err != nil {
			return err
		}
	}
	eng.OnReport = func(pos int64, s automata.StateID) {
		res.NumReports++
		res.Reports = append(res.Reports, sim.Report{Pos: pos, State: x.cur.ColdOrig[s]})
	}
	inj := x.opts.Faults
	active := inj.Active()
	bst := st.coldStats
	n := int64(len(x.input))
	i := st.pos
	j := int(st.coldJ)
	fold := func() {
		c := bst
		c.cycles += c.stalls
		res.SpAPBatchCycles = append(res.SpAPBatchCycles, c.cycles)
		res.SpAPCycles += c.cycles
		res.SpAPProcessed += c.cycles - c.stalls
		res.EnableStalls += c.stalls
		res.QueueRefills += c.refills
	}
	for i < n {
		if x.ck.Due(bst.cycles) {
			st.pos, st.coldJ, st.coldStats = i, int64(j), bst
			eng.Snapshot(&st.snap, i)
			if serr := x.save(); serr != nil {
				fold()
				return serr
			}
		}
		if cerr := x.ck.Check(i); cerr != nil {
			fold()
			return cerr
		}
		if bst.cycles&(cancelCheckInterval-1) == 0 && cancelled(x.ctx) {
			fold()
			return x.ctx.Err()
		}
		if eng.FrontierEmpty() {
			if j >= len(reports) {
				break
			}
			i = reports[j].Pos // jump operation
		}
		if active {
			if s, ok := inj.FlipAt(i, x.cur.Cold.Len()); ok {
				eng.ToggleState(s)
				res.Fault.Flips++
			}
		}
		enabled := 0
		for j < len(reports) && reports[j].Pos == i {
			eng.EnableState(x.cur.ColdID[reports[j].Target])
			if j%x.cfg.ReportQueueLen == x.cfg.ReportQueueLen-1 {
				bst.refills++
			}
			j++
			enabled++
		}
		if enabled > x.cfg.EnablePorts {
			bst.stalls += int64((enabled+x.cfg.EnablePorts-1)/x.cfg.EnablePorts - 1)
		}
		eng.Step(i, x.input[i])
		bst.cycles++
		i++
	}
	fold()
	return nil
}

// runFallback is baselineFallback with checkpoints: one plain engine pass
// over the whole network, snapshotted every Every symbols. FallbackCycles
// is assigned (not accumulated) from symbols processed, so resumes cannot
// double-count it.
func (x *ckExec) runFallback() error {
	st, res := x.st, &x.st.res
	batches, err := ap.PartitionNFAs(x.cur.Net, x.cfg.Capacity)
	if err != nil {
		return err
	}
	if st.pos == 0 {
		if err := loadConfigs(x.opts.Faults, &res.Fault, 0, len(batches)); err != nil {
			return err
		}
	}
	eng := sim.AcquireEngine(x.cur.Net, sim.Options{})
	defer eng.Release()
	if st.pos > 0 {
		if err := eng.Restore(&st.snap); err != nil {
			return err
		}
	}
	eng.OnReport = func(pos int64, s automata.StateID) {
		res.NumReports++
		res.Reports = append(res.Reports, sim.Report{Pos: pos, State: s})
	}
	n := int64(len(x.input))
	for i := st.pos; i < n; i++ {
		if x.ck.Due(i) {
			st.pos = i
			eng.Snapshot(&st.snap, i)
			if serr := x.save(); serr != nil {
				st.gs.FallbackCycles = int64(len(batches)) * i
				return serr
			}
		}
		if cerr := x.ck.Check(i); cerr != nil {
			st.gs.FallbackCycles = int64(len(batches)) * i
			return cerr
		}
		if i&(cancelCheckInterval-1) == 0 && cancelled(x.ctx) {
			st.gs.FallbackCycles = int64(len(batches)) * i
			return x.ctx.Err()
		}
		eng.Step(i, x.input[i])
	}
	st.gs.FallbackCycles = int64(len(batches)) * n
	st.phase = ckPhaseDone
	st.pos = 0
	return x.save()
}
