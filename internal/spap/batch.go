// Batched hot-path execution: one BaseAP-mode image walk shared by up to
// 64 independent input streams.
//
// BaseAP mode dominates a partitioned run's cycle budget (every hot batch
// streams the whole input), and it is exactly the shape the multi-stream
// kernel amortizes: RunBaseAPSpAPBatch drives the hot network once for a
// whole wave of inputs through sim.BatchEngine, collecting per-lane final
// and intermediate reports, then runs each stream's SpAP cold mode
// individually (cold mode is report-driven with jump operations at
// per-stream positions, so lockstep buys it nothing). Per-input Results
// are identical to solo RunBaseAPSpAP on the same input.
//
// The batched entry point is unguarded and fault-free: watchdog budgets
// and injected fault plans are positional per single run, so an active
// injector routes each input through the solo executor instead.
package spap

import (
	"context"
	"fmt"
	"math"
	"math/bits"
	"sort"

	"sparseap/internal/ap"
	"sparseap/internal/automata"
	"sparseap/internal/hotcold"
	"sparseap/internal/sim"
)

// RunBaseAPSpAPBatch executes every input against the partition under the
// BaseAP/SpAP system, sharing one hot-network image walk across up to
// sim.MaxLanes concurrent streams, and returns per-input results in input
// order. Streams beyond the lane capacity are scheduled onto lanes as
// earlier streams retire.
func RunBaseAPSpAPBatch(p *hotcold.Partition, inputs [][]byte, cfg ap.Config, opts Options) ([]*Result, error) {
	return RunBaseAPSpAPBatchContext(context.Background(), p, inputs, cfg, opts)
}

// RunBaseAPSpAPBatchContext is RunBaseAPSpAPBatch with cancellation. On
// cancellation the partial per-input results accumulated so far are
// returned together with ctx.Err(); inputs whose cold mode never ran
// carry only their BaseAP-mode accounting.
func RunBaseAPSpAPBatchContext(ctx context.Context, p *hotcold.Partition, inputs [][]byte, cfg ap.Config, opts Options) ([]*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if opts.Faults.Active() {
		// Fault plans are positional per single run: keep the injected
		// semantics exact by running each input solo.
		results := make([]*Result, len(inputs))
		for i, in := range inputs {
			res, err := RunBaseAPSpAPContext(ctx, p, in, cfg, opts)
			results[i] = res
			if err != nil {
				return results, err
			}
		}
		return results, nil
	}

	hotBatches, err := ap.PartitionNFAs(p.Hot, cfg.Capacity)
	if err != nil {
		return nil, fmt.Errorf("spap: hot network: %w", err)
	}
	results := make([]*Result, len(inputs))
	inter := make([][]IntermediateReport, len(inputs))
	for i := range results {
		results[i] = &Result{
			BaseAPBatches: len(hotBatches),
			JumpRatio:     math.NaN(),
		}
	}

	be := sim.ImageOf(p.Hot).AcquireBatch(sim.BatchOptions{})
	defer be.Release()
	var laneIdx [sim.MaxLanes]int
	be.OnReport = func(lane int, pos int64, s automata.StateID) {
		idx := laneIdx[lane]
		res := results[idx]
		if orig := p.HotOrig[s]; orig != automata.None {
			res.NumReports++
			if opts.CollectReports {
				res.Reports = append(res.Reports, sim.Report{Pos: pos, State: orig})
			}
			return
		}
		inter[idx] = append(inter[idx], IntermediateReport{Pos: pos, Target: p.Intermediate[s]})
	}

	nextInput := 0
	cancelledAt := func() error {
		// Record the partial BaseAP accounting of every unfinished lane.
		for m := be.RunningMask(); m != 0; m &= m - 1 {
			lane := bits.TrailingZeros64(m)
			results[laneIdx[lane]].BaseAPCycles = int64(len(hotBatches)) * be.LanePos(lane)
		}
		return ctx.Err()
	}
	for nextInput < len(inputs) || be.Running() > 0 {
		for nextInput < len(inputs) {
			lane, ok := be.Join(inputs[nextInput])
			if !ok {
				break
			}
			laneIdx[lane] = nextInput
			nextInput++
			if be.Done(lane) { // empty input
				be.Free(lane)
			}
		}
		if be.Running() == 0 {
			continue
		}
		if be.Ticks()&(cancelCheckInterval-1) == 0 && cancelled(ctx) {
			return results, cancelledAt()
		}
		for m := be.Tick(); m != 0; m &= m - 1 {
			lane := bits.TrailingZeros64(m)
			results[laneIdx[lane]].BaseAPCycles = int64(len(hotBatches)) * be.LanePos(lane)
			be.Free(lane)
		}
	}

	for i := range results {
		if cancelled(ctx) {
			return results, ctx.Err()
		}
		res := results[i]
		res.IntermediateReports = int64(len(inter[i]))
		// The batch engine emits reports in cycle order (ascending state
		// within a cycle), like the solo engine; sort defensively by
		// position for the queue model, mirroring runBaseAPMode.
		sort.SliceStable(inter[i], func(a, b int) bool { return inter[i][a].Pos < inter[i][b].Pos })
		if err := runSpAPMode(ctx, p, inputs[i], cfg, opts, res, inter[i]); err != nil {
			finalize(res, cfg)
			return results, err
		}
		finalize(res, cfg)
	}
	return results, nil
}
