// Package spap implements the paper's hardware contribution (Section V):
// the two-mode execution of a partitioned application.
//
// BaseAP mode runs the predicted hot network as ordinary batched AP
// execution; activated intermediate reporting states produce intermediate
// reports (input position, cold state ID). SpAP mode then runs the
// predicted cold network driven by both the input stream and the
// intermediate-report list, using two new operations:
//
//   - enable: turn on the STE named by a report's hierarchical address;
//   - jump:   when no STE is enabled, skip the input position register
//     forward to the next report's position (Algorithm 1).
//
// Multiple reports at one input position serialize through the single
// enable port, stalling input processing (enable stalls). The package also
// provides the AP–CPU comparison system, where mis-prediction handling runs
// on a modeled CPU instead of SpAP mode.
package spap

import (
	"context"
	"fmt"
	"math"
	"sort"

	"sparseap/internal/ap"
	"sparseap/internal/automata"
	"sparseap/internal/fault"
	"sparseap/internal/hotcold"
	"sparseap/internal/hotness"
	"sparseap/internal/sim"
)

// cancelCheckInterval is how many cycles an execution loop runs between
// context polls — the same granularity the sim package uses, far below one
// batch, so every entry point returns well within a batch of cancellation.
const cancelCheckInterval = 4096

// cancelled polls ctx without blocking.
func cancelled(ctx context.Context) bool {
	select {
	case <-ctx.Done():
		return true
	default:
		return false
	}
}

// loadConfigs models loading count batch configurations (global batch IDs
// base..base+count-1) onto the fabric under an injector's load-failure
// plan: each failed attempt is retried, counting into st.ConfigRetries,
// until the injector's MaxLoadRetries cap trips fault.ErrConfigLoad.
func loadConfigs(inj *fault.Injector, st *fault.Stats, base, count int) error {
	if !inj.Active() {
		return nil
	}
	for b := base; b < base+count; b++ {
		for attempt := 0; inj.LoadFails(b, attempt); attempt++ {
			st.ConfigRetries++
			if attempt+1 >= inj.MaxLoadRetries() {
				return fmt.Errorf("spap: batch %d: %w", b, fault.ErrConfigLoad)
			}
		}
	}
	return nil
}

// IntermediateReport is one mis-prediction event: the original cold state
// Target must be enabled at input position Pos.
type IntermediateReport struct {
	Pos    int64
	Target automata.StateID // original network ID
}

// Result summarizes a partitioned execution (either system).
type Result struct {
	// BaseAPBatches is the number of BaseAP-mode configurations.
	BaseAPBatches int
	// ColdBatches is the number of SpAP-mode configurations built; only
	// SpAPExecutions of them receive reports and actually run.
	ColdBatches int
	// SpAPExecutions counts cold batches that executed (Table IV).
	SpAPExecutions int
	// IntermediateReports is the number of intermediate reports
	// generated in BaseAP mode.
	IntermediateReports int64
	// EnableStalls counts cycles stalled on simultaneous enables.
	EnableStalls int64
	// QueueRefills counts 128-entry report-queue refills from device
	// memory during SpAP mode.
	QueueRefills int64
	// BaseAPCycles = BaseAPBatches × input length.
	BaseAPCycles int64
	// SpAPCycles is the total SpAP-mode cycle count, including stalls.
	SpAPCycles int64
	// SpAPProcessed counts input symbols actually processed in SpAP mode
	// (SpAPCycles minus the enable stalls).
	SpAPProcessed int64
	// SpAPBatchCycles holds the cycle count of each executed SpAP batch
	// (len == SpAPExecutions); board-level schedulers use these to
	// overlap batches across half-cores.
	SpAPBatchCycles []int64
	// CPUTimeNS is the modeled CPU handling time (AP–CPU system only).
	CPUTimeNS float64
	// TotalCycles = BaseAPCycles + SpAPCycles (BaseAP/SpAP system).
	TotalCycles int64
	// TimeNS is the end-to-end time of the system.
	TimeNS float64
	// JumpRatio is the proportion of input positions skipped in SpAP mode
	// thanks to jump operations (stall cycles are accounted in SpAPCycles
	// but are not "unskipped positions"); NaN if SpAP mode never ran.
	JumpRatio float64
	// NumReports counts final (application) reports.
	NumReports int64
	// Reports holds final reports in original state IDs, when collected.
	Reports []sim.Report
	// Fault counts the runtime faults an active injector applied (all
	// zero when Options.Faults is nil or inactive).
	Fault fault.Stats
	// Guard holds watchdog statistics when the run went through
	// RunGuarded; nil otherwise.
	Guard *GuardStats
	// Resume holds checkpoint/resume bookkeeping when the run went
	// through a checkpointed entry point; nil otherwise.
	Resume *ResumeStats
}

// Options configures an execution.
type Options struct {
	// CollectReports retains the final report list (original IDs).
	CollectReports bool
	// Faults, when non-nil and active, injects runtime faults during
	// execution: transient enable-bit flips in both modes,
	// intermediate-report queue drops, and batch-configuration load
	// failures (retried up to the injector's MaxLoadRetries, after which
	// the run fails with fault.ErrConfigLoad). Counters accumulate in
	// Result.Fault. Stuck-at STE faults are a compile-time transformation;
	// apply them to the network with fault.Injector.InjectStuck before
	// partitioning.
	Faults *fault.Injector
	// Calibrate, when non-nil, receives each guarded run's misprediction
	// outcome (intermediate-report count, guard trips/widenings/
	// fallbacks) so the static hotness analysis can recalibrate its
	// score weights online. Only RunGuarded observes it; the unguarded
	// entry points leave it untouched.
	Calibrate *hotness.Calibrator
}

// RunBaseAPSpAP executes the partition under the BaseAP/SpAP system of
// Table III and returns cycle-accurate statistics.
func RunBaseAPSpAP(p *hotcold.Partition, input []byte, cfg ap.Config, opts Options) (*Result, error) {
	return RunBaseAPSpAPContext(context.Background(), p, input, cfg, opts)
}

// RunBaseAPSpAPContext is RunBaseAPSpAP with cancellation: both execution
// modes poll ctx and stop within cancelCheckInterval cycles of it firing.
// On cancellation (and on injected configuration-load failure) the partial
// result accumulated so far is returned together with the error; the
// result is nil only for configuration or partitioning errors.
func RunBaseAPSpAPContext(ctx context.Context, p *hotcold.Partition, input []byte, cfg ap.Config, opts Options) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	res, reports, err := runBaseAPMode(ctx, p, input, cfg, opts, nil)
	if err != nil {
		return finalize(res, cfg), err
	}
	if err := runSpAPMode(ctx, p, input, cfg, opts, res, reports); err != nil {
		return finalize(res, cfg), err
	}
	return finalize(res, cfg), nil
}

// finalize fills the derived totals; it tolerates a nil partial result.
func finalize(res *Result, cfg ap.Config) *Result {
	if res == nil {
		return nil
	}
	res.TotalCycles = res.BaseAPCycles + res.SpAPCycles
	if res.Guard != nil {
		res.TotalCycles += res.Guard.WastedCycles + res.Guard.FallbackCycles
	}
	res.TimeNS = float64(res.TotalCycles) * cfg.CycleNS
	return res
}

// runBaseAPMode executes the hot network in batches, separating final
// reports from intermediate reports. A non-nil watchdog observes every
// cycle and aborts the mode with errGuardTripped when its budget is
// exceeded (see RunGuarded); ctx cancellation and injected
// configuration-load failures abort it with the corresponding error. In
// all abort cases the partial result is returned with BaseAPCycles
// reflecting the symbols actually processed.
func runBaseAPMode(ctx context.Context, p *hotcold.Partition, input []byte, cfg ap.Config, opts Options, wd *watchdog) (*Result, []IntermediateReport, error) {
	hotBatches, err := ap.PartitionNFAs(p.Hot, cfg.Capacity)
	if err != nil {
		return nil, nil, fmt.Errorf("spap: hot network: %w", err)
	}
	res := &Result{
		BaseAPBatches: len(hotBatches),
		BaseAPCycles:  int64(len(hotBatches)) * int64(len(input)),
		JumpRatio:     math.NaN(),
	}
	inj := opts.Faults
	if err := loadConfigs(inj, &res.Fault, 0, len(hotBatches)); err != nil {
		res.BaseAPCycles = 0
		return res, nil, err
	}
	var inter []IntermediateReport
	interSeen := int64(0) // generated intermediate reports, including dropped
	eng := sim.AcquireEngine(p.Hot, sim.Options{})
	defer eng.Release()
	eng.OnReport = func(pos int64, s automata.StateID) {
		if orig := p.HotOrig[s]; orig != automata.None {
			res.NumReports++
			if opts.CollectReports {
				res.Reports = append(res.Reports, sim.Report{Pos: pos, State: orig})
			}
			return
		}
		idx := interSeen
		interSeen++
		if inj.DropReport(idx) {
			res.Fault.DroppedReports++
			return
		}
		inter = append(inter, IntermediateReport{Pos: pos, Target: p.Intermediate[s]})
	}
	active := inj.Active()
	abort := func(processed int) (*Result, []IntermediateReport, error) {
		res.BaseAPCycles = int64(len(hotBatches)) * int64(processed)
		res.IntermediateReports = int64(len(inter))
		return res, inter, nil
	}
	for i, b := range input {
		if i&(cancelCheckInterval-1) == 0 && cancelled(ctx) {
			r, in, _ := abort(i)
			return r, in, ctx.Err()
		}
		if active {
			if s, ok := inj.FlipAt(int64(i), p.Hot.Len()); ok {
				eng.ToggleState(s)
				res.Fault.Flips++
			}
		}
		before := len(inter)
		eng.Step(int64(i), b)
		if wd != nil {
			wd.observe(int64(i)+1, len(inter)-before, int64(len(inter)))
			if wd.isTripped() {
				r, in, _ := abort(i + 1)
				return r, in, errGuardTripped
			}
		}
	}
	res.IntermediateReports = int64(len(inter))
	// The engine emits reports in cycle order (and ascending state order
	// within a cycle), which Algorithm 1 permits (all same-position
	// reports are enabled together). Sort defensively by position for the
	// queue model.
	sort.SliceStable(inter, func(a, b int) bool { return inter[a].Pos < inter[b].Pos })
	return res, inter, nil
}

// routeReports assigns each intermediate report to the cold batch owning
// its target's cold NFA.
func routeReports(p *hotcold.Partition, coldBatches []ap.Batch, inter []IntermediateReport) [][]IntermediateReport {
	batchOfNFA := make([]int, p.Cold.NumNFAs())
	for bi, b := range coldBatches {
		for _, nfa := range b.NFAs {
			batchOfNFA[nfa] = bi
		}
	}
	perBatch := make([][]IntermediateReport, len(coldBatches))
	for _, r := range inter {
		cid := p.ColdID[r.Target]
		bi := batchOfNFA[p.Cold.NFAOf[cid]]
		perBatch[bi] = append(perBatch[bi], r)
	}
	return perBatch
}

// runSpAPMode executes the cold network in batches under Algorithm 1.
func runSpAPMode(ctx context.Context, p *hotcold.Partition, input []byte, cfg ap.Config, opts Options, res *Result, inter []IntermediateReport) error {
	if p.Cold.Len() == 0 {
		return nil
	}
	coldBatches, err := ap.PartitionNFAs(p.Cold, cfg.Capacity)
	if err != nil {
		return fmt.Errorf("spap: cold network: %w", err)
	}
	res.ColdBatches = len(coldBatches)
	if len(inter) == 0 {
		return nil
	}
	perBatch := routeReports(p, coldBatches, inter)
	for bi, reports := range perBatch {
		if len(reports) == 0 {
			continue
		}
		if cancelled(ctx) {
			return ctx.Err()
		}
		// Cold batches share the global configuration-ID space with the
		// BaseAP batches, and load lazily: a batch that receives no
		// reports is never configured.
		if err := loadConfigs(opts.Faults, &res.Fault, res.BaseAPBatches+bi, 1); err != nil {
			return err
		}
		res.SpAPExecutions++
		st, err := runSpAPBatch(ctx, p, input, reports, cfg, opts, res)
		res.SpAPBatchCycles = append(res.SpAPBatchCycles, st.cycles)
		res.SpAPCycles += st.cycles
		res.SpAPProcessed += st.cycles - st.stalls
		res.EnableStalls += st.stalls
		res.QueueRefills += st.refills
		if err != nil {
			return err
		}
	}
	if res.SpAPExecutions > 0 {
		denom := float64(res.SpAPExecutions) * float64(len(input))
		res.JumpRatio = 1 - float64(res.SpAPProcessed)/denom
	}
	return nil
}

// batchStats carries per-batch SpAP accounting.
type batchStats struct {
	cycles  int64 // symbols processed + enable stalls
	stalls  int64
	refills int64
}

// runSpAPBatch is Algorithm 1. The whole cold network is simulated, driven
// only by this batch's reports; because NFAs are independent, states
// outside the batch are never enabled, so the result is identical to
// simulating the batch alone. Cancellation returns the stats accumulated
// so far together with ctx.Err().
func runSpAPBatch(ctx context.Context, p *hotcold.Partition, input []byte, reports []IntermediateReport, cfg ap.Config, opts Options, res *Result) (batchStats, error) {
	eng := sim.AcquireEngine(p.Cold, sim.Options{})
	defer eng.Release()
	eng.OnReport = func(pos int64, s automata.StateID) {
		res.NumReports++
		if opts.CollectReports {
			res.Reports = append(res.Reports, sim.Report{Pos: pos, State: p.ColdOrig[s]})
		}
	}
	inj := opts.Faults
	active := inj.Active()
	var st batchStats
	n := int64(len(input))
	i := int64(0)
	j := 0
	for i < n {
		if st.cycles&(cancelCheckInterval-1) == 0 && cancelled(ctx) {
			st.cycles += st.stalls
			return st, ctx.Err()
		}
		if eng.FrontierEmpty() {
			if j >= len(reports) {
				break
			}
			i = reports[j].Pos // jump operation
		}
		if active {
			if s, ok := inj.FlipAt(i, p.Cold.Len()); ok {
				eng.ToggleState(s)
				res.Fault.Flips++
			}
		}
		// Enable every report generated at this position. EnablePorts
		// enables overlap with one symbol cycle; each additional full
		// port-width of simultaneous reports stalls input processing for
		// one cycle (Section V-B describes the 1-port design).
		enabled := 0
		for j < len(reports) && reports[j].Pos == i {
			eng.EnableState(p.ColdID[reports[j].Target])
			if j%cfg.ReportQueueLen == cfg.ReportQueueLen-1 {
				st.refills++
			}
			j++
			enabled++
		}
		if enabled > cfg.EnablePorts {
			st.stalls += int64((enabled+cfg.EnablePorts-1)/cfg.EnablePorts - 1)
		}
		eng.Step(i, input[i])
		st.cycles++
		i++
	}
	st.cycles += st.stalls
	return st, nil
}

// CPUModel is the cost model substituted for the paper's wall-clock CPU
// measurements (see DESIGN.md): handling an intermediate report costs
// DispatchNS, and each input symbol the CPU interpreter processes while any
// cold state is enabled costs SymbolNS.
type CPUModel struct {
	DispatchNS float64
	SymbolNS   float64
}

// DefaultCPUModel reflects a software NFA interpreter: ~2 µs to dispatch a
// report from the AP's output queue into the interpreter, ~300 ns per
// processed symbol (about 40× the AP's 7.5 ns streaming cycle).
func DefaultCPUModel() CPUModel {
	return CPUModel{DispatchNS: 2000, SymbolNS: 300}
}

// RunAPCPU executes the partition under the AP–CPU system of Table III:
// BaseAP mode is unchanged, but the predicted cold set runs on a CPU. The
// CPU needs no capacity batching; it interprets the cold network from each
// report position until the frontier dies.
func RunAPCPU(p *hotcold.Partition, input []byte, cfg ap.Config, cpu CPUModel, opts Options) (*Result, error) {
	return RunAPCPUContext(context.Background(), p, input, cfg, cpu, opts)
}

// RunAPCPUContext is RunAPCPU with cancellation; like
// RunBaseAPSpAPContext it returns the partial result together with
// ctx.Err() when cancelled. Injected faults apply to the AP side only
// (flips, queue drops, configuration loads); the software interpreter is
// modeled fault-free.
func RunAPCPUContext(ctx context.Context, p *hotcold.Partition, input []byte, cfg ap.Config, cpu CPUModel, opts Options) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	res, inter, err := runBaseAPMode(ctx, p, input, cfg, opts, nil)
	if err != nil {
		if res != nil {
			res.TotalCycles = res.BaseAPCycles
			res.TimeNS = float64(res.BaseAPCycles) * cfg.CycleNS
		}
		return res, err
	}
	if len(inter) > 0 {
		eng := sim.AcquireEngine(p.Cold, sim.Options{})
		defer eng.Release()
		eng.OnReport = func(pos int64, s automata.StateID) {
			res.NumReports++
			if opts.CollectReports {
				res.Reports = append(res.Reports, sim.Report{Pos: pos, State: p.ColdOrig[s]})
			}
		}
		var processed int64
		n := int64(len(input))
		i := int64(0)
		j := 0
		for i < n {
			if processed&(cancelCheckInterval-1) == 0 && cancelled(ctx) {
				err = ctx.Err()
				break
			}
			if eng.FrontierEmpty() {
				if j >= len(inter) {
					break
				}
				i = inter[j].Pos
			}
			for j < len(inter) && inter[j].Pos == i {
				eng.EnableState(p.ColdID[inter[j].Target])
				j++
			}
			eng.Step(i, input[i])
			processed++
			i++
		}
		res.CPUTimeNS = float64(j)*cpu.DispatchNS + float64(processed)*cpu.SymbolNS
	}
	res.TotalCycles = res.BaseAPCycles
	res.TimeNS = float64(res.BaseAPCycles)*cfg.CycleNS + res.CPUTimeNS
	return res, err
}
