package spap

import (
	"bytes"
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"

	"sparseap/internal/checkpoint"
	"sparseap/internal/fault"
	"sparseap/internal/hotcold"
	"sparseap/internal/regexc"
)

// chainApp builds a long stream over the "abcde" chain pattern profiled
// so the deep states land cold: a workload with a substantial SpAP phase.
func chainApp(t *testing.T, n int) (p *hotcold.Partition, input []byte) {
	t.Helper()
	net, err := regexc.CompileAll([]string{"abcde"}, regexc.Options{})
	if err != nil {
		t.Fatal(err)
	}
	unit := []byte("ab abcde xx abcde ")
	input = bytes.Repeat(unit, (n+len(unit)-1)/len(unit))[:n]
	return buildPartition(t, net, input[:2]), input
}

// ckResultsEqual asserts a checkpointed result is identical to the plain
// executor's, field by field (Resume bookkeeping excluded by design).
func ckResultsEqual(t *testing.T, tag string, got, want *Result) {
	t.Helper()
	if got.BaseAPBatches != want.BaseAPBatches || got.ColdBatches != want.ColdBatches ||
		got.SpAPExecutions != want.SpAPExecutions ||
		got.IntermediateReports != want.IntermediateReports ||
		got.EnableStalls != want.EnableStalls || got.QueueRefills != want.QueueRefills ||
		got.BaseAPCycles != want.BaseAPCycles || got.SpAPCycles != want.SpAPCycles ||
		got.SpAPProcessed != want.SpAPProcessed || got.TotalCycles != want.TotalCycles ||
		got.NumReports != want.NumReports {
		t.Fatalf("%s: counters diverged:\ngot  %+v\nwant %+v", tag, got, want)
	}
	if len(got.SpAPBatchCycles) != len(want.SpAPBatchCycles) {
		t.Fatalf("%s: SpAPBatchCycles %v vs %v", tag, got.SpAPBatchCycles, want.SpAPBatchCycles)
	}
	for i := range got.SpAPBatchCycles {
		if got.SpAPBatchCycles[i] != want.SpAPBatchCycles[i] {
			t.Fatalf("%s: SpAPBatchCycles %v vs %v", tag, got.SpAPBatchCycles, want.SpAPBatchCycles)
		}
	}
	if !(math.IsNaN(got.JumpRatio) && math.IsNaN(want.JumpRatio)) && got.JumpRatio != want.JumpRatio {
		t.Fatalf("%s: JumpRatio %v vs %v", tag, got.JumpRatio, want.JumpRatio)
	}
	if len(got.Reports) != len(want.Reports) {
		t.Fatalf("%s: %d reports vs %d", tag, len(got.Reports), len(want.Reports))
	}
	for i := range got.Reports {
		if got.Reports[i] != want.Reports[i] {
			t.Fatalf("%s: report %d = %+v, want %+v (order must be bit-identical)",
				tag, i, got.Reports[i], want.Reports[i])
		}
	}
	if got.Fault != want.Fault {
		t.Fatalf("%s: fault stats %+v vs %+v", tag, got.Fault, want.Fault)
	}
	if (got.Guard == nil) != (want.Guard == nil) {
		t.Fatalf("%s: guard presence %v vs %v", tag, got.Guard != nil, want.Guard != nil)
	}
	if got.Guard != nil {
		a, b := got.Guard, want.Guard
		if a.Attempts != b.Attempts || a.Trips != b.Trips || a.WastedCycles != b.WastedCycles ||
			a.Widened != b.Widened || a.FallbackBaseline != b.FallbackBaseline ||
			a.BatchFallbacks != b.BatchFallbacks || a.FallbackCycles != b.FallbackCycles ||
			len(a.TripPos) != len(b.TripPos) {
			t.Fatalf("%s: guard stats:\ngot  %+v\nwant %+v", tag, a, b)
		}
		for i := range a.TripPos {
			if a.TripPos[i] != b.TripPos[i] {
				t.Fatalf("%s: TripPos %v vs %v", tag, a.TripPos, b.TripPos)
			}
		}
	}
}

// killSched injects crashes at global chaos-hook-poll thresholds; the
// counter spans resumes, so every threshold fires exactly once.
type killSched struct {
	checks int64
	at     []int64
	next   int
}

func (k *killSched) hook(pos int64) bool {
	k.checks++
	if k.next < len(k.at) && k.checks >= k.at[k.next] {
		k.next++
		return true
	}
	return false
}

// seededKills distributes nKills thresholds across the poll volume of an
// uninterrupted run of `probe`, so crashes land in every phase the
// workload reaches (early BaseAP through the tail of the cold phase).
func seededKills(t *testing.T, nKills int, probe func(ck *checkpoint.Runner) error) *killSched {
	t.Helper()
	count := &killSched{}
	if err := probe(&checkpoint.Runner{CrashAt: count.hook}); err != nil {
		t.Fatalf("probe run: %v", err)
	}
	if count.checks < int64(nKills) {
		t.Fatalf("workload too small: %d chaos polls", count.checks)
	}
	s := &killSched{}
	for i := 1; i <= nKills; i++ {
		s.at = append(s.at, count.checks*int64(2*i-1)/int64(2*nKills))
	}
	return s
}

// runUntilDone drives a checkpointed run through its kill schedule,
// re-invoking after each injected crash until it completes. It returns
// the final result and the phases the run resumed into.
func runUntilDone(t *testing.T, sched *killSched, store checkpoint.Store, every int64,
	run func(ck *checkpoint.Runner) (*Result, error)) (*Result, []string) {
	t.Helper()
	var phases []string
	for attempt := 0; ; attempt++ {
		if attempt > len(sched.at)+2 {
			t.Fatalf("kill/resume loop did not converge after %d attempts", attempt)
		}
		ck := &checkpoint.Runner{Store: store, Name: "spap", Every: every, CrashAt: sched.hook}
		res, err := run(ck)
		if res != nil && res.Resume != nil && res.Resume.Resumed {
			phases = append(phases, res.Resume.Phase)
		}
		if err == nil {
			if sched.next != len(sched.at) {
				t.Fatalf("only %d of %d kill points fired", sched.next, len(sched.at))
			}
			return res, phases
		}
		if !errors.Is(err, checkpoint.ErrCrashInjected) {
			t.Fatalf("attempt %d: %v", attempt, err)
		}
	}
}

func TestCheckpointedDisabledMatchesPlain(t *testing.T) {
	ctx := context.Background()
	p, input := chainApp(t, 2048)
	cfg, opts := cfgWithCapacity(100), Options{CollectReports: true}
	want, err := RunBaseAPSpAP(p, input, cfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	got, err := RunBaseAPSpAPCheckpointed(ctx, p, input, cfg, opts, nil)
	if err != nil {
		t.Fatal(err)
	}
	ckResultsEqual(t, "chain", got, want)
	if got.Resume == nil || got.Resume.Resumed || got.Resume.Saves != 0 {
		t.Fatalf("disabled-runner Resume = %+v", got.Resume)
	}

	// Property sweep: random applications, random inputs — the
	// checkpointed phase machine must be execution-equivalent.
	r := rand.New(rand.NewSource(4099))
	for trial := 0; trial < 40; trial++ {
		net, in := randomApp(r)
		if len(in) < 4 {
			continue
		}
		pp, err := hotcold.BuildFromProfile(net, in[:len(in)/2], hotcold.Options{})
		if err != nil {
			continue // unprofilable app; equivalence is vacuous
		}
		capacity := 5 + r.Intn(60)
		w, werr := RunBaseAPSpAP(pp, in, cfgWithCapacity(capacity), opts)
		g, gerr := RunBaseAPSpAPCheckpointed(ctx, pp, in, cfgWithCapacity(capacity), opts, nil)
		if (werr == nil) != (gerr == nil) {
			t.Fatalf("trial %d: error divergence: %v vs %v", trial, werr, gerr)
		}
		if werr == nil {
			ckResultsEqual(t, "random", g, w)
		}
	}
}

func TestCheckpointedGuardedLadderMatchesPlain(t *testing.T) {
	ctx := context.Background()
	cases := []struct {
		name  string
		g     Guard
		storm bool
	}{
		{"healthy", Guard{}, false},
		{"widen-retry", Guard{MinReports: 64, HopelessFactor: 1000}, true},
		{"hopeless-fallback", Guard{MinReports: 64}, true},
		{"batch-fallback", Guard{ReportBudget: 100, StallBudget: 1e-9, MinReports: 1 << 40}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var p *hotcold.Partition
			var input []byte
			if tc.storm {
				p, input = buildStorm(t, 4, 16, 4096)
			} else {
				p, input = chainApp(t, 2048)
			}
			want, err := RunGuarded(ctx, p, input, cfgWithCapacity(100), tc.g, Options{CollectReports: true})
			if err != nil {
				t.Fatal(err)
			}
			got, err := RunGuardedCheckpointed(ctx, p, input, cfgWithCapacity(100), tc.g, Options{CollectReports: true}, nil)
			if err != nil {
				t.Fatal(err)
			}
			ckResultsEqual(t, tc.name, got, want)
		})
	}
}

func TestCheckpointedUninterruptedWithStoreMatchesPlain(t *testing.T) {
	ctx := context.Background()
	p, input := chainApp(t, 2048)
	cfg, opts := cfgWithCapacity(100), Options{CollectReports: true}
	want, err := RunBaseAPSpAP(p, input, cfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	store, err := checkpoint.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	ck := &checkpoint.Runner{Store: store, Name: "spap", Every: 64}
	got, err := RunBaseAPSpAPCheckpointed(ctx, p, input, cfg, opts, ck)
	if err != nil {
		t.Fatal(err)
	}
	ckResultsEqual(t, "with-store", got, want)
	if got.Resume.Saves == 0 {
		t.Fatal("expected periodic saves with an enabled store")
	}
	// A second invocation short-circuits on the done-phase record.
	again, err := RunBaseAPSpAPCheckpointed(ctx, p, input, cfg, opts, ck)
	if err != nil {
		t.Fatal(err)
	}
	ckResultsEqual(t, "done-replay", again, want)
	if !again.Resume.Resumed || again.Resume.Phase != "done" {
		t.Fatalf("done replay Resume = %+v", again.Resume)
	}
}

func TestCheckpointedCrashResumeUnguarded(t *testing.T) {
	ctx := context.Background()
	p, input := chainApp(t, 4096)
	cfg, opts := cfgWithCapacity(100), Options{CollectReports: true}
	want, err := RunBaseAPSpAP(p, input, cfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	sched := seededKills(t, 5, func(ck *checkpoint.Runner) error {
		_, err := RunBaseAPSpAPCheckpointed(ctx, p, input, cfg, opts, ck)
		return err
	})
	store, err := checkpoint.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	got, phases := runUntilDone(t, sched, store, 64, func(ck *checkpoint.Runner) (*Result, error) {
		return RunBaseAPSpAPCheckpointed(ctx, p, input, cfg, opts, ck)
	})
	ckResultsEqual(t, "crash-resume", got, want)
	seen := map[string]bool{}
	for _, ph := range phases {
		seen[ph] = true
	}
	if !seen["baseap"] || !seen["spap"] {
		t.Fatalf("kill points did not span both phases: resumed into %v", phases)
	}
}

func TestCheckpointedCrashResumeGuardedWiden(t *testing.T) {
	ctx := context.Background()
	p, input := buildStorm(t, 4, 16, 4096)
	g := Guard{MinReports: 64, HopelessFactor: 1000}
	want, err := RunGuarded(ctx, p, input, cfgWithCapacity(100), g, Options{CollectReports: true})
	if err != nil {
		t.Fatal(err)
	}
	sched := seededKills(t, 5, func(ck *checkpoint.Runner) error {
		_, err := RunGuardedCheckpointed(ctx, p, input, cfgWithCapacity(100), g, Options{CollectReports: true}, ck)
		return err
	})
	store, err := checkpoint.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	got, _ := runUntilDone(t, sched, store, 64, func(ck *checkpoint.Runner) (*Result, error) {
		return RunGuardedCheckpointed(ctx, p, input, cfgWithCapacity(100), g, Options{CollectReports: true}, ck)
	})
	ckResultsEqual(t, "guarded-widen", got, want)
	if got.Guard == nil || !got.Guard.Widened || got.Guard.Attempts != 2 {
		t.Fatalf("widen ladder lost across resumes: %+v", got.Guard)
	}
}

func TestCheckpointedCrashResumeGuardedFallback(t *testing.T) {
	ctx := context.Background()
	p, input := buildStorm(t, 4, 16, 4096)
	g := Guard{MinReports: 64} // hopeless storm: falls back to baseline
	want, err := RunGuarded(ctx, p, input, cfgWithCapacity(100), g, Options{CollectReports: true})
	if err != nil {
		t.Fatal(err)
	}
	sched := seededKills(t, 5, func(ck *checkpoint.Runner) error {
		_, err := RunGuardedCheckpointed(ctx, p, input, cfgWithCapacity(100), g, Options{CollectReports: true}, ck)
		return err
	})
	store, err := checkpoint.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	got, phases := runUntilDone(t, sched, store, 64, func(ck *checkpoint.Runner) (*Result, error) {
		return RunGuardedCheckpointed(ctx, p, input, cfgWithCapacity(100), g, Options{CollectReports: true}, ck)
	})
	ckResultsEqual(t, "guarded-fallback", got, want)
	if got.Guard == nil || !got.Guard.FallbackBaseline {
		t.Fatalf("fallback ladder lost across resumes: %+v", got.Guard)
	}
	seen := map[string]bool{}
	for _, ph := range phases {
		seen[ph] = true
	}
	if !seen["fallback"] {
		t.Fatalf("no kill point landed in the fallback phase: resumed into %v", phases)
	}
}

func TestCheckpointedFaultPlanCrashResume(t *testing.T) {
	ctx := context.Background()
	p, input := chainApp(t, 4096)
	inj := fault.New(fault.Plan{Seed: 3, EnableFlipRate: 0.002, ReportDropRate: 0.1})
	cfg := cfgWithCapacity(100)
	opts := Options{CollectReports: true, Faults: inj}
	want, err := RunBaseAPSpAP(p, input, cfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	sched := seededKills(t, 5, func(ck *checkpoint.Runner) error {
		_, err := RunBaseAPSpAPCheckpointed(ctx, p, input, cfg, opts, ck)
		return err
	})
	store, err := checkpoint.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	got, _ := runUntilDone(t, sched, store, 64, func(ck *checkpoint.Runner) (*Result, error) {
		return RunBaseAPSpAPCheckpointed(ctx, p, input, cfg, opts, ck)
	})
	// The fault plan is hash-seeded by position, so the interrupted run
	// replays the exact same flips and drops as the uninterrupted one.
	ckResultsEqual(t, "faulted", got, want)
	if got.Fault.Flips == 0 && got.Fault.DroppedReports == 0 {
		t.Fatal("fault plan never fired; test is vacuous")
	}
}

func TestCheckpointedGuardModeMismatch(t *testing.T) {
	ctx := context.Background()
	p, input := chainApp(t, 2048)
	store, err := checkpoint.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	sched := &killSched{at: []int64{400}}
	ck := &checkpoint.Runner{Store: store, Name: "spap", Every: 64, CrashAt: sched.hook}
	if _, err := RunBaseAPSpAPCheckpointed(ctx, p, input, cfgWithCapacity(100), Options{}, ck); !errors.Is(err, checkpoint.ErrCrashInjected) {
		t.Fatalf("expected injected crash, got %v", err)
	}
	// Resuming a plain run through the guarded entry point must refuse.
	ck2 := &checkpoint.Runner{Store: store, Name: "spap", Every: 64}
	if _, err := RunGuardedCheckpointed(ctx, p, input, cfgWithCapacity(100), Guard{}, Options{}, ck2); !errors.Is(err, checkpoint.ErrMismatch) {
		t.Fatalf("guarded resume of a plain checkpoint: err = %v, want ErrMismatch", err)
	}
}

func TestCheckpointedStateVersionMismatch(t *testing.T) {
	ctx := context.Background()
	p, input := chainApp(t, 512)
	store, err := checkpoint.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Save("spap", spapStateVersion+1, []byte("future")); err != nil {
		t.Fatal(err)
	}
	ck := &checkpoint.Runner{Store: store, Name: "spap", Every: 64}
	if _, err := RunBaseAPSpAPCheckpointed(ctx, p, input, cfgWithCapacity(100), Options{}, ck); !errors.Is(err, checkpoint.ErrMismatch) {
		t.Fatalf("future-version checkpoint: err = %v, want ErrMismatch", err)
	}
}
