// Adaptive guarded execution: a mid-run watchdog over BaseAP mode plus a
// per-batch stall pre-flight over SpAP mode, degrading gracefully when a
// partition turns out to be storm-prone (the PEN pathology of the paper's
// own evaluation: simultaneous intermediate reports serialize through the
// single enable port and SpAP mode ends up slower than the baseline).
//
// The degradation ladder is:
//
//  1. abort BaseAP mode as soon as the intermediate-report volume and the
//     predicted enable-stall rate both exceed their budgets (the trip costs
//     only the cycles streamed so far, not a full run);
//  2. retry with every NFA's partition layer k_U widened by WidenFactor
//     (pulling storm states into the hot set), at most MaxRetries times;
//  3. fall back to plain baseline batched execution of the whole network.
//
// Independently, a batch whose routed report list predicts more stalls
// than the budget allows is not executed in SpAP mode at all; its NFAs run
// un-split as ordinary baseline batches instead (per-batch fallback).
//
// Both fallbacks preserve the report multiset exactly — they re-derive the
// same matches through a different execution system — so the guard is
// invisible to correctness, and its regret is bounded: the total cost is
// at most the aborted attempts (each cut short at the trip position) plus
// one baseline execution.
package spap

import (
	"context"
	"errors"
	"math"
	"sort"

	"sparseap/internal/ap"
	"sparseap/internal/automata"
	"sparseap/internal/fault"
	"sparseap/internal/hotcold"
	"sparseap/internal/hotness"
	"sparseap/internal/lint"
	"sparseap/internal/sim"
)

// Guard configures the adaptive executor's budgets. The zero value of any
// field is replaced by its DefaultGuard counterpart, except MaxRetries
// where negative means "no widened retries" (zero takes the default).
type Guard struct {
	// ReportBudget is the tolerated intermediate-report density in BaseAP
	// mode: reports per processed input symbol.
	ReportBudget float64
	// StallBudget is the tolerated predicted enable-stall rate: stalls per
	// input symbol, applied both to the BaseAP watchdog and to each SpAP
	// batch's pre-flight.
	StallBudget float64
	// MinReports is the intermediate-report floor below which the BaseAP
	// watchdog never trips, so short transients cannot abort a run.
	MinReports int64
	// MaxRetries caps widened-k_U retries before the baseline fallback;
	// negative disables them.
	MaxRetries int
	// WidenFactor multiplies every NFA's partition layer on each retry.
	WidenFactor int32
	// HopelessFactor classifies a trip as hopeless when the recent-window
	// report rate exceeds HopelessFactor × ReportBudget: widening the
	// partition cannot tame a storm that severe, so the run skips the
	// retries and falls back to baseline immediately, keeping the wasted
	// work to one short aborted attempt.
	HopelessFactor float64
	// Preflight runs the certified worst-case pre-flight before the
	// first attempt: Safe partitions skip the watchdog, storm-bounded
	// ones start at statically sized layers, and certified-hopeless ones
	// go straight to the baseline fallback without paying for a trip.
	// See PreflightPartition for the trade-off.
	Preflight bool
}

// DefaultGuard returns budgets tuned on the suite: every healthy
// application stays far below them (the worst observed density is ~0.06
// reports/symbol) while PEN-shaped storms (~2.6 reports/symbol) trip
// within a few thousand symbols.
func DefaultGuard() Guard {
	return Guard{
		ReportBudget:   lint.DefaultReportBudget,
		StallBudget:    lint.DefaultReportBudget,
		MinReports:     512,
		MaxRetries:     1,
		WidenFactor:    2,
		HopelessFactor: 8,
	}
}

// withDefaults fills zero-valued fields from DefaultGuard.
func (g Guard) withDefaults() Guard {
	d := DefaultGuard()
	if g.ReportBudget <= 0 {
		g.ReportBudget = d.ReportBudget
	}
	if g.StallBudget <= 0 {
		g.StallBudget = d.StallBudget
	}
	if g.MinReports <= 0 {
		g.MinReports = d.MinReports
	}
	if g.MaxRetries == 0 {
		g.MaxRetries = d.MaxRetries
	} else if g.MaxRetries < 0 {
		g.MaxRetries = 0
	}
	if g.WidenFactor < 2 {
		g.WidenFactor = d.WidenFactor
	}
	if g.HopelessFactor <= 1 {
		g.HopelessFactor = d.HopelessFactor
	}
	return g
}

// GuardStats records what the guard did during one RunGuarded call.
type GuardStats struct {
	// Attempts counts BaseAP-mode attempts (1 = no trip ever).
	Attempts int
	// Trips counts aborted BaseAP-mode attempts.
	Trips int
	// TripPos holds the input position of each trip.
	TripPos []int64
	// WastedCycles is the total cost of aborted attempts: for each,
	// batches × symbols streamed before the trip.
	WastedCycles int64
	// Widened reports whether any retry ran with widened partition layers.
	Widened bool
	// FallbackBaseline reports whether the run degraded all the way to
	// plain baseline batched execution of the whole network.
	FallbackBaseline bool
	// BatchFallbacks counts SpAP batches replaced by baseline execution of
	// their un-split NFAs (per-batch pre-flight trips).
	BatchFallbacks int
	// FallbackCycles is the cost of all fallback executions (baseline
	// batches × symbols processed).
	FallbackCycles int64
	// Preflight is the static pre-flight verdict (Guard.Preflight only).
	Preflight *Preflight
}

// errGuardTripped aborts BaseAP mode internally; it never escapes
// RunGuarded.
var errGuardTripped = errors.New("spap: guard watchdog tripped")

// watchdogStride is how often the watchdog checkpoints its counters for
// the recent-window rate; watchdogWindow is the window length in symbols.
const (
	watchdogStride = 256
	watchdogWindow = 1024
)

// watchdog tracks intermediate-report volume and the enable-stall count
// those reports would produce if replayed through SpAP mode. The stall
// estimate treats all reports as routed to one batch, an upper bound on
// the per-batch truth — conservative in the right direction for an abort
// decision.
type watchdog struct {
	g        Guard
	ports    int
	stalls   int64
	tripped  bool
	pos      int64
	rate     float64 // recent report rate at the trip
	firstPos int64   // position of the first intermediate report

	// hist checkpoints the cumulative report count every watchdogStride
	// symbols, giving the windowed rate that separates a hopeless storm
	// (instantaneous rate far above budget) from a borderline trip that a
	// cumulative average — diluted by a quiet prefix — cannot distinguish.
	hist []int64
}

// observe ingests one cycle: burst reports were generated at this cycle,
// total have been generated so far, processed symbols are done.
func (w *watchdog) observe(processed int64, burst int, total int64) {
	if burst > w.ports {
		w.stalls += int64((burst+w.ports-1)/w.ports - 1)
	}
	if burst > 0 && w.firstPos == 0 && total == int64(burst) {
		w.firstPos = processed - 1
	}
	if processed%watchdogStride == 0 {
		w.hist = append(w.hist, total)
	}
	if total < w.g.MinReports {
		return
	}
	// Trip only when BOTH budgets are exceeded: a high report volume whose
	// entries arrive alone replays efficiently through SpAP jumps (PEN at
	// small scale: 0.31 reports/symbol, near-zero stalls, 1.13× speedup);
	// the pathology needs simultaneous reports serializing through the
	// enable ports as well.
	p := float64(processed)
	if float64(total) > w.g.ReportBudget*p && float64(w.stalls) > w.g.StallBudget*p {
		w.tripped = true
		w.pos = processed
		// The storm rate: the larger of the recent-window rate and the
		// rate since reports began. A quiet prefix dilutes the cumulative
		// average; a storm that only just started dilutes the fixed
		// window; the max is robust to both.
		w.rate = w.windowRate(processed, total)
		span := processed - w.firstPos
		if span < 1 {
			span = 1
		}
		if r := float64(total) / float64(span); r > w.rate {
			w.rate = r
		}
	}
}

// windowRate returns reports per symbol over roughly the last
// watchdogWindow symbols (falling back to the cumulative rate early on).
func (w *watchdog) windowRate(processed, total int64) float64 {
	back := int(watchdogWindow / watchdogStride)
	if len(w.hist) < back {
		return float64(total) / float64(processed)
	}
	prev := w.hist[len(w.hist)-back]
	span := processed - int64(len(w.hist)-back+1)*watchdogStride
	if span <= 0 {
		return float64(total) / float64(processed)
	}
	return float64(total-prev) / float64(span)
}

// hopeless reports whether the trip's recent rate is beyond what widened
// partition layers could plausibly absorb.
func (w *watchdog) hopeless() bool {
	return w.rate > w.g.HopelessFactor*w.g.ReportBudget
}

func (w *watchdog) isTripped() bool { return w.tripped }

// RunGuarded executes the partition under the BaseAP/SpAP system with the
// adaptive guard. When no budget is exceeded the result is cycle-for-cycle
// identical to RunBaseAPSpAPContext (plus a populated Result.Guard); when
// a budget trips, execution degrades per the ladder above and
// Result.TotalCycles additionally accounts the wasted and fallback cycles,
// so TimeNS remains the honest end-to-end figure. The report multiset is
// preserved in every path. On cancellation the partial result is returned
// with ctx.Err().
func RunGuarded(ctx context.Context, p *hotcold.Partition, input []byte, cfg ap.Config, g Guard, opts Options) (*Result, error) {
	res, err := runGuarded(ctx, p, input, cfg, g, opts)
	// Close the static-prediction loop: every intermediate report is a
	// hot→cold boundary crossing the partition cut failed to keep hot, so
	// the guarded run's outcome is exactly the misprediction evidence the
	// hotness calibrator consumes.
	if opts.Calibrate != nil && res != nil && res.Guard != nil {
		fb := hotness.Feedback{
			Mispredicts: int(res.IntermediateReports),
			Symbols:     len(input),
			Trips:       res.Guard.Trips,
		}
		if res.Guard.Widened {
			fb.Widened = 1
		}
		if res.Guard.FallbackBaseline {
			fb.FallbackBaseline = 1
		}
		opts.Calibrate.Observe(fb)
	}
	return res, err
}

func runGuarded(ctx context.Context, p *hotcold.Partition, input []byte, cfg ap.Config, g Guard, opts Options) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	g = g.withDefaults()
	gs := &GuardStats{}
	inner := opts
	inner.CollectReports = true // per-batch fallback splices report lists
	var acc fault.Stats         // fault counters from aborted attempts
	cur := p
	if g.Preflight {
		pf := PreflightPartition(p, g, cfg.EnablePorts)
		gs.Preflight = pf
		if pf.Hopeless {
			gs.FallbackBaseline = true
			return baselineFallback(ctx, p, input, cfg, opts, gs, acc)
		}
		if pf.K != nil {
			if np, err := hotcold.Build(p.Net, p.Topo, pf.K, hotcold.Options{}); err == nil {
				cur = np
				gs.Widened = true
			}
		}
	}
	for {
		gs.Attempts++
		wd := &watchdog{g: g, ports: cfg.EnablePorts}
		if gs.Preflight != nil && gs.Preflight.Safe {
			// The static bound proves the watchdog can never trip; skip
			// its bookkeeping entirely.
			wd = nil
		}
		res, inter, err := runBaseAPMode(ctx, cur, input, cfg, inner, wd)
		if errors.Is(err, errGuardTripped) {
			gs.Trips++
			gs.TripPos = append(gs.TripPos, wd.pos)
			gs.WastedCycles += res.BaseAPCycles
			acc.Add(res.Fault)
			if gs.Attempts-1 < g.MaxRetries && !wd.hopeless() {
				if np, ok := widenPartition(cur, g.WidenFactor); ok {
					gs.Widened = true
					cur = np
					continue
				}
			}
			gs.FallbackBaseline = true
			return baselineFallback(ctx, cur, input, cfg, opts, gs, acc)
		}
		if err != nil {
			if res != nil {
				res.Guard = gs
				res.Fault.Add(acc)
				trimReports(res, opts)
			}
			return finalize(res, cfg), err
		}
		err = runColdGuarded(ctx, cur, input, cfg, inner, res, inter, g, gs)
		res.Guard = gs
		res.Fault.Add(acc)
		sortReports(res.Reports)
		trimReports(res, opts)
		return finalize(res, cfg), err
	}
}

// widenPartition rebuilds the partition with every NFA's layer multiplied
// by factor (capped at the NFA's depth). It returns false when no layer
// can grow — the partition is already fully hot — or the rebuild fails.
func widenPartition(p *hotcold.Partition, factor int32) (*hotcold.Partition, bool) {
	k2 := make([]int32, len(p.K))
	changed := false
	for i, k := range p.K {
		nk := k * factor
		if mx := p.Topo.MaxPerNFA[i]; nk > mx {
			nk = mx
		}
		if nk != k {
			changed = true
		}
		k2[i] = nk
	}
	if !changed {
		return nil, false
	}
	np, err := hotcold.Build(p.Net, p.Topo, k2, hotcold.Options{})
	if err != nil {
		return nil, false
	}
	return np, true
}

// baselineFallback runs the whole original network as plain baseline
// batches; the entire cost lands in GuardStats.FallbackCycles (plus the
// already-recorded WastedCycles).
func baselineFallback(ctx context.Context, p *hotcold.Partition, input []byte, cfg ap.Config, opts Options, gs *GuardStats, acc fault.Stats) (*Result, error) {
	batches, err := ap.PartitionNFAs(p.Net, cfg.Capacity)
	if err != nil {
		return nil, err
	}
	res := &Result{JumpRatio: math.NaN(), Guard: gs, Fault: acc}
	if err := loadConfigs(opts.Faults, &res.Fault, 0, len(batches)); err != nil {
		return finalize(res, cfg), err
	}
	sres, err := sim.RunContext(ctx, p.Net, input, sim.Options{CollectReports: opts.CollectReports})
	res.NumReports = sres.NumReports
	res.Reports = sres.Reports
	gs.FallbackCycles = int64(len(batches)) * sres.Symbols
	return finalize(res, cfg), err
}

// predictStalls computes, exactly, the enable stalls Algorithm 1 will pay
// to replay this (position-sorted) report list through a batch.
func predictStalls(reports []IntermediateReport, ports int) int64 {
	var stalls int64
	for i := 0; i < len(reports); {
		j := i
		for j < len(reports) && reports[j].Pos == reports[i].Pos {
			j++
		}
		if burst := j - i; burst > ports {
			stalls += int64((burst+ports-1)/ports - 1)
		}
		i = j
	}
	return stalls
}

// runColdGuarded is runSpAPMode with a pre-flight: a batch whose report
// list predicts more stalls than StallBudget × len(input) is not executed
// in SpAP mode; its NFAs run un-split as baseline batches instead.
func runColdGuarded(ctx context.Context, p *hotcold.Partition, input []byte, cfg ap.Config, opts Options, res *Result, inter []IntermediateReport, g Guard, gs *GuardStats) error {
	if p.Cold.Len() == 0 {
		return nil
	}
	coldBatches, err := ap.PartitionNFAs(p.Cold, cfg.Capacity)
	if err != nil {
		return err
	}
	res.ColdBatches = len(coldBatches)
	if len(inter) == 0 {
		return nil
	}
	perBatch := routeReports(p, coldBatches, inter)
	stallCap := int64(g.StallBudget * float64(len(input)))
	for bi, reports := range perBatch {
		if len(reports) == 0 {
			continue
		}
		if cancelled(ctx) {
			return ctx.Err()
		}
		if predictStalls(reports, cfg.EnablePorts) > stallCap {
			if err := batchFallback(ctx, p, input, cfg, opts, res, coldBatches[bi], gs); err != nil {
				return err
			}
			continue
		}
		if err := loadConfigs(opts.Faults, &res.Fault, res.BaseAPBatches+bi, 1); err != nil {
			return err
		}
		res.SpAPExecutions++
		st, err := runSpAPBatch(ctx, p, input, reports, cfg, opts, res)
		res.SpAPBatchCycles = append(res.SpAPBatchCycles, st.cycles)
		res.SpAPCycles += st.cycles
		res.SpAPProcessed += st.cycles - st.stalls
		res.EnableStalls += st.stalls
		res.QueueRefills += st.refills
		if err != nil {
			return err
		}
	}
	if res.SpAPExecutions > 0 {
		denom := float64(res.SpAPExecutions) * float64(len(input))
		res.JumpRatio = 1 - float64(res.SpAPProcessed)/denom
	}
	return nil
}

// batchFallback replaces one SpAP batch with baseline batched execution of
// its NFAs, un-split: the full original NFAs owning the batch's cold
// fragments re-run over the whole input, and their reports replace both
// the skipped SpAP-mode reports and the BaseAP-mode final reports those
// NFAs already produced (the full-NFA run regenerates them). NFAs are
// independent, so the overall report multiset is exactly preserved.
func batchFallback(ctx context.Context, p *hotcold.Partition, input []byte, cfg ap.Config, opts Options, res *Result, batch ap.Batch, gs *GuardStats) error {
	fb := make(map[int32]bool)
	for _, cn := range batch.NFAs {
		lo, _ := p.Cold.NFAStates(cn)
		fb[p.Net.NFAOf[p.ColdOrig[lo]]] = true
	}
	sub, origOf := p.Net.Subset(func(s automata.StateID) bool { return fb[p.Net.NFAOf[s]] })
	fbBatches, err := ap.PartitionNFAs(sub, cfg.Capacity)
	if err != nil {
		return err
	}
	kept := res.Reports[:0]
	var removed int64
	for _, r := range res.Reports {
		if fb[p.Net.NFAOf[r.State]] {
			removed++
			continue
		}
		kept = append(kept, r)
	}
	res.Reports = kept
	res.NumReports -= removed
	sres, err := sim.RunContext(ctx, sub, input, sim.Options{CollectReports: true})
	for _, r := range sres.Reports {
		res.Reports = append(res.Reports, sim.Report{Pos: r.Pos, State: origOf[r.State]})
	}
	res.NumReports += sres.NumReports
	gs.BatchFallbacks++
	gs.FallbackCycles += int64(len(fbBatches)) * sres.Symbols
	return err
}

// sortReports orders reports by (position, state) for deterministic
// output after fallback splicing.
func sortReports(rs []sim.Report) {
	sort.Slice(rs, func(a, b int) bool {
		if rs[a].Pos != rs[b].Pos {
			return rs[a].Pos < rs[b].Pos
		}
		return rs[a].State < rs[b].State
	})
}

// trimReports drops the internally collected report list when the caller
// did not ask for it.
func trimReports(res *Result, opts Options) {
	if !opts.CollectReports {
		res.Reports = nil
	}
}
