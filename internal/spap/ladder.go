// Per-tenant guard escalation: a degradation ladder over whole requests.
//
// RunGuarded's watchdog degrades a single execution; a server sees the
// next request from the same tenant minutes later and would pay the
// aborted-attempt cost again. The Ladder remembers: a tenant whose
// guarded runs keep tripping is routed straight to the baseline kernel
// (skipping the doomed BaseAP attempt entirely), and after a cooldown a
// single probe request is allowed back through the guarded path — if the
// workload has calmed down the tenant is promoted again, otherwise the
// cooldown restarts. Degradation is per tenant, so one storm-prone
// tenant never changes a neighbour's execution mode.
package spap

import "sync"

// Mode is a tenant's current execution route.
type Mode int

const (
	// ModeGuarded routes requests through RunGuarded (SpAP with the
	// adaptive guard) — the healthy default.
	ModeGuarded Mode = iota
	// ModeBaseline routes requests directly to the baseline kernel; the
	// tenant tripped the guard too often and SpAP attempts are wasted
	// cycles until the cooldown expires.
	ModeBaseline
	// ModeProbe is one guarded request allowed after the cooldown to
	// test whether the tenant's workload has calmed down.
	ModeProbe
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case ModeGuarded:
		return "guarded"
	case ModeBaseline:
		return "baseline"
	case ModeProbe:
		return "probe"
	}
	return "unknown"
}

// LadderConfig tunes the escalation thresholds. The zero value takes the
// defaults.
type LadderConfig struct {
	// TripLimit is how many consecutive tripped requests demote a tenant
	// to ModeBaseline (default 2).
	TripLimit int
	// Cooldown is how many baseline-routed requests pass before a probe
	// is allowed (default 8).
	Cooldown int
}

func (c LadderConfig) withDefaults() LadderConfig {
	if c.TripLimit <= 0 {
		c.TripLimit = 2
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 8
	}
	return c
}

// Ladder tracks one tenant's position on the degradation ladder. Safe for
// concurrent use (a tenant may issue parallel requests).
type Ladder struct {
	mu   sync.Mutex
	cfg  LadderConfig
	mode Mode

	consecTrips int // consecutive guarded requests that tripped
	sinceDemote int // baseline requests served since the demotion
	probing     bool

	trips     int64 // lifetime trip count
	demotions int64 // lifetime demotions to baseline
}

// NewLadder returns a healthy ladder with the given thresholds.
func NewLadder(cfg LadderConfig) *Ladder {
	return &Ladder{cfg: cfg.withDefaults()}
}

// Next returns the mode the tenant's next request should execute under,
// consuming the probe slot when one is due: exactly one in-flight request
// gets ModeProbe, concurrent ones stay on baseline until its outcome is
// observed.
func (l *Ladder) Next() Mode {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.mode == ModeGuarded {
		return ModeGuarded
	}
	if l.probing {
		return ModeBaseline // a probe is already in flight
	}
	if l.sinceDemote >= l.cfg.Cooldown {
		l.probing = true
		return ModeProbe
	}
	l.sinceDemote++
	return ModeBaseline
}

// ObserveGuarded records the outcome of a request that ran under
// ModeGuarded or ModeProbe: tripped is whether the guard watchdog fired
// (any trip, widened retry, or baseline fallback). It moves the tenant
// down the ladder on repeated trips and back up on a clean probe.
func (l *Ladder) ObserveGuarded(mode Mode, tripped bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if mode == ModeProbe {
		l.probing = false
		if tripped {
			l.trips++
			l.sinceDemote = 0 // restart the cooldown
			return
		}
		// Clean probe: promote back to the guarded path.
		l.mode = ModeGuarded
		l.consecTrips = 0
		return
	}
	if !tripped {
		l.consecTrips = 0
		return
	}
	l.trips++
	l.consecTrips++
	if l.consecTrips >= l.cfg.TripLimit && l.mode == ModeGuarded {
		l.mode = ModeBaseline
		l.demotions++
		l.sinceDemote = 0
		l.probing = false
	}
}

// Tripped reports whether a guarded result counts as a trip for the
// ladder: any watchdog abort, widened retry, per-batch fallback, or full
// baseline fallback means the SpAP path wasted work on this request.
func Tripped(res *Result) bool {
	if res == nil || res.Guard == nil {
		return false
	}
	g := res.Guard
	return g.Trips > 0 || g.Widened || g.FallbackBaseline || g.BatchFallbacks > 0
}

// Mode returns the tenant's resting mode (ModeGuarded or ModeBaseline)
// without consuming a probe slot.
func (l *Ladder) Mode() Mode {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.mode
}

// Stats returns lifetime trip and demotion counts.
func (l *Ladder) Stats() (trips, demotions int64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.trips, l.demotions
}
