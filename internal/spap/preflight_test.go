package spap

import (
	"context"
	"testing"

	"sparseap/internal/automata"
	"sparseap/internal/graph"
	"sparseap/internal/hotcold"
	"sparseap/internal/regexc"
	"sparseap/internal/sim"
	"sparseap/internal/symset"
)

// buildDeepStorm is buildStorm with a longer cold chain: always-enabled
// hot heads feed `depth` cold states each, so a single widening round
// (factor 2 from k=1) still leaves a storming cut — the shape the
// pre-flight must classify as hopeless rather than sized.
func buildDeepStorm(t *testing.T, starts int, span byte, depth, inputLen int) (*hotcold.Partition, []byte) {
	t.Helper()
	m := automata.NewNFA()
	var wide symset.Set
	wide.AddRange('a', 'a'+span-1)
	for i := 0; i < starts; i++ {
		prev := m.Add(wide, automata.StartAllInput, false)
		for d := 0; d < depth; d++ {
			s := m.Add(wide, automata.StartNone, d == depth-1)
			m.Connect(prev, s)
			prev = s
		}
	}
	net := automata.NewNetwork(m)
	p, err := hotcold.Build(net, graph.TopoOrder(net), []int32{1}, hotcold.Options{})
	if err != nil {
		t.Fatal(err)
	}
	input := make([]byte, inputLen)
	for i := range input {
		input[i] = 'a' + byte(i)%span
	}
	return p, input
}

func TestPreflightSafePartition(t *testing.T) {
	// A single literal chain has at most one simultaneous intermediate
	// report — within the one enable port, so no input can ever stall
	// and the verdict is Safe.
	net, err := regexc.CompileAll([]string{"abcde"}, regexc.Options{})
	if err != nil {
		t.Fatal(err)
	}
	input := []byte("ab abcde xx abcde")
	p := buildPartition(t, net, input[:2])
	pf := PreflightPartition(p, Guard{}, 1)
	if !pf.Safe || pf.Hopeless || pf.K != nil {
		t.Fatalf("preflight = %+v, want Safe", pf)
	}

	res, err := RunGuarded(context.Background(), p, input, cfgWithCapacity(100), Guard{Preflight: true}, Options{CollectReports: true})
	if err != nil {
		t.Fatal(err)
	}
	gs := res.Guard
	if gs.Preflight == nil || !gs.Preflight.Safe {
		t.Fatalf("guard stats lack the Safe verdict: %+v", gs)
	}
	if gs.Attempts != 1 || gs.Trips != 0 || gs.Widened || gs.FallbackBaseline {
		t.Fatalf("safe preflight changed execution: %+v", gs)
	}
	plain, err := RunBaseAPSpAP(p, input, cfgWithCapacity(100), Options{CollectReports: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalCycles != plain.TotalCycles || !reportsEqual(plain.Reports, res.Reports) {
		t.Fatal("safe preflight run diverges from the unguarded executor")
	}
}

func TestPreflightSizesLayers(t *testing.T) {
	// The shallow storm is fixed by one widening round (fully hot): the
	// pre-flight finds that statically, and the guarded run starts there
	// — widened, but with zero trips and zero wasted cycles.
	p, input := buildStorm(t, 4, 16, 4096)
	pf := PreflightPartition(p, Guard{}, 1)
	if pf.Safe || pf.Hopeless || pf.K == nil {
		t.Fatalf("preflight = %+v, want sized layers", pf)
	}

	res, err := RunGuarded(context.Background(), p, input, cfgWithCapacity(100), Guard{Preflight: true, MinReports: 64}, Options{CollectReports: true})
	if err != nil {
		t.Fatal(err)
	}
	gs := res.Guard
	if gs.Attempts != 1 || gs.Trips != 0 || !gs.Widened || gs.FallbackBaseline {
		t.Fatalf("guard stats = %+v, want pre-widened single attempt", gs)
	}
	if gs.WastedCycles != 0 {
		t.Errorf("pre-widening should waste nothing, got %d cycles", gs.WastedCycles)
	}
	baseline := sim.Run(p.Net, input, sim.Options{CollectReports: true})
	if !reportsEqual(baseline.Reports, res.Reports) {
		t.Fatal("pre-widened run changed the report multiset")
	}
}

func TestPreflightHopelessShortCircuits(t *testing.T) {
	// The deep storm survives the allowed widening, and the witness
	// demonstrates a sustained stalling storm: the guarded run goes
	// straight to baseline without a single BaseAP attempt.
	p, input := buildDeepStorm(t, 4, 16, 3, 4096)
	pf := PreflightPartition(p, Guard{MinReports: 64}, 1)
	if pf.Safe || pf.K != nil || !pf.Hopeless {
		t.Fatalf("preflight = %+v, want Hopeless", pf)
	}
	if pf.WitnessPeak <= 1 || pf.WitnessDensity <= 1 {
		t.Fatalf("witness should demonstrate a storm, got peak %d density %.2f",
			pf.WitnessPeak, pf.WitnessDensity)
	}

	res, err := RunGuarded(context.Background(), p, input, cfgWithCapacity(100), Guard{Preflight: true, MinReports: 64}, Options{CollectReports: true})
	if err != nil {
		t.Fatal(err)
	}
	gs := res.Guard
	if gs.Attempts != 0 || gs.Trips != 0 || !gs.FallbackBaseline {
		t.Fatalf("guard stats = %+v, want zero attempts and a baseline fallback", gs)
	}
	if gs.WastedCycles != 0 {
		t.Errorf("hopeless short-circuit should waste nothing, got %d cycles", gs.WastedCycles)
	}
	baseline := sim.Run(p.Net, input, sim.Options{CollectReports: true})
	if !reportsEqual(baseline.Reports, res.Reports) {
		t.Fatal("hopeless fallback changed the report multiset")
	}
}
