package spap

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"sparseap/internal/regexc"
)

// batchTestInputs builds ragged inputs over the chain alphabet, several
// containing full matches so both hot and cold modes do real work.
func batchTestInputs(r *rand.Rand, n int) [][]byte {
	pieces := []string{"ab", "abcde", "xx", " ", "abcd", "e"}
	out := make([][]byte, n)
	for i := range out {
		var in []byte
		for k := 0; k <= r.Intn(12); k++ {
			in = append(in, pieces[r.Intn(len(pieces))]...)
		}
		out[i] = in // may be empty
	}
	return out
}

// The batched hot path must be result-identical to solo RunBaseAPSpAP on
// every input: reports, counts, cycle accounting, jump ratios.
func TestBatchResultIdenticalToSolo(t *testing.T) {
	net, err := regexc.CompileAll([]string{"abcde", "ax"}, regexc.Options{})
	if err != nil {
		t.Fatal(err)
	}
	full := []byte("ab abcde xx abcde ax")
	p := buildPartition(t, net, full[:2])
	if p.Cold.Len() == 0 {
		t.Fatal("test needs a nonempty cold set")
	}
	cfg := cfgWithCapacity(100)
	r := rand.New(rand.NewSource(17))
	for _, n := range []int{1, 3, 70} { // solo wave, small wave, > MaxLanes
		inputs := batchTestInputs(r, n)
		got, err := RunBaseAPSpAPBatch(p, inputs, cfg, Options{CollectReports: true})
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(inputs) {
			t.Fatalf("%d results for %d inputs", len(got), len(inputs))
		}
		for i, in := range inputs {
			want, err := RunBaseAPSpAP(p, in, cfg, Options{CollectReports: true})
			if err != nil {
				t.Fatal(err)
			}
			g := got[i]
			if !reportsEqual(g.Reports, want.Reports) {
				t.Fatalf("wave %d input %d: reports differ:\nbatch %v\nsolo  %v",
					n, i, g.Reports, want.Reports)
			}
			gs := fmt.Sprintf("%d/%d/%d/%d/%d/%d", g.NumReports, g.IntermediateReports,
				g.BaseAPCycles, g.SpAPCycles, g.EnableStalls, g.SpAPExecutions)
			ws := fmt.Sprintf("%d/%d/%d/%d/%d/%d", want.NumReports, want.IntermediateReports,
				want.BaseAPCycles, want.SpAPCycles, want.EnableStalls, want.SpAPExecutions)
			if gs != ws {
				t.Fatalf("wave %d input %d: accounting differs: batch %s, solo %s", n, i, gs, ws)
			}
			if g.TotalCycles != want.TotalCycles || g.TimeNS != want.TimeNS {
				t.Fatalf("wave %d input %d: totals differ: batch %d/%.1f, solo %d/%.1f",
					n, i, g.TotalCycles, g.TimeNS, want.TotalCycles, want.TimeNS)
			}
		}
	}
}

// Cancellation returns the partial per-input results, never nil ones.
func TestBatchCancelReturnsPartials(t *testing.T) {
	net, err := regexc.CompileAll([]string{"abcde"}, regexc.Options{})
	if err != nil {
		t.Fatal(err)
	}
	p := buildPartition(t, net, []byte("ab"))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	inputs := batchTestInputs(rand.New(rand.NewSource(3)), 5)
	got, err := RunBaseAPSpAPBatchContext(ctx, p, inputs, cfgWithCapacity(100), Options{})
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(got) != len(inputs) {
		t.Fatalf("%d results for %d inputs", len(got), len(inputs))
	}
	for i, res := range got {
		if res == nil {
			t.Fatalf("result %d is nil", i)
		}
	}
}
