package spap

import (
	"context"
	"errors"
	"testing"
	"time"

	"sparseap/internal/automata"
	"sparseap/internal/fault"
	"sparseap/internal/graph"
	"sparseap/internal/hotcold"
	"sparseap/internal/hotness"
	"sparseap/internal/regexc"
	"sparseap/internal/sim"
	"sparseap/internal/symset"
)

// buildStorm returns a PEN-shaped storm partition: `starts` always-enabled
// hot states matching ['a','a'+span) each feed their own cold reporting
// child matching the same range, cut at k=1. Every in-range input symbol
// then produces `starts` simultaneous intermediate reports — both the
// report density and the enable-stall rate sit far over any sane budget.
// The input cycles through the range.
func buildStorm(t *testing.T, starts int, span byte, inputLen int) (*hotcold.Partition, []byte) {
	t.Helper()
	m := automata.NewNFA()
	var wide symset.Set
	wide.AddRange('a', 'a'+span-1)
	for i := 0; i < starts; i++ {
		parent := m.Add(wide, automata.StartAllInput, false)
		m.Connect(parent, m.Add(wide, automata.StartNone, true))
	}
	net := automata.NewNetwork(m)
	p, err := hotcold.Build(net, graph.TopoOrder(net), []int32{1}, hotcold.Options{})
	if err != nil {
		t.Fatal(err)
	}
	input := make([]byte, inputLen)
	for i := range input {
		input[i] = 'a' + byte(i)%span
	}
	return p, input
}

func TestGuardStormWidenRetry(t *testing.T) {
	// With an effectively-disabled hopeless cutoff, the guard widens k and
	// the retry — now fully hot, no intermediates — succeeds.
	p, input := buildStorm(t, 4, 16, 4096)
	g := Guard{MinReports: 64, HopelessFactor: 1000}
	res, err := RunGuarded(context.Background(), p, input, cfgWithCapacity(100), g, Options{CollectReports: true})
	if err != nil {
		t.Fatal(err)
	}
	gs := res.Guard
	if gs == nil || gs.Attempts != 2 || gs.Trips != 1 || !gs.Widened || gs.FallbackBaseline {
		t.Fatalf("guard stats = %+v, want 2 attempts, 1 trip, widened, no baseline fallback", gs)
	}
	if gs.WastedCycles <= 0 || len(gs.TripPos) != 1 {
		t.Errorf("trip accounting wrong: %+v", gs)
	}
	baseline := sim.Run(p.Net, input, sim.Options{CollectReports: true})
	if !reportsEqual(baseline.Reports, res.Reports) {
		t.Fatalf("reports differ after widen retry: %d vs %d", len(res.Reports), len(baseline.Reports))
	}
	// Regret bound: total cost is at most the aborted attempt plus the
	// successful one; the wasted part is bounded by the trip position.
	if gs.WastedCycles > gs.TripPos[0]+int64(watchdogStride) {
		t.Errorf("wasted %d cycles for a trip at %d", gs.WastedCycles, gs.TripPos[0])
	}
}

func TestGuardStormHopelessFallsBack(t *testing.T) {
	// The storm rate (~4 reports/symbol) is far over the default hopeless
	// threshold (8 × 0.15 = 1.2): the guard skips the widen retry entirely
	// and degrades straight to baseline after one short aborted attempt.
	p, input := buildStorm(t, 4, 16, 4096)
	g := Guard{MinReports: 64}
	res, err := RunGuarded(context.Background(), p, input, cfgWithCapacity(100), g, Options{CollectReports: true})
	if err != nil {
		t.Fatal(err)
	}
	gs := res.Guard
	if gs == nil || gs.Attempts != 1 || !gs.FallbackBaseline || gs.Widened {
		t.Fatalf("guard stats = %+v, want 1 attempt and a baseline fallback", gs)
	}
	baseline := sim.Run(p.Net, input, sim.Options{CollectReports: true})
	if !reportsEqual(baseline.Reports, res.Reports) {
		t.Fatal("baseline fallback changed the report multiset")
	}
	if gs.FallbackCycles == 0 {
		t.Error("fallback cycles not accounted")
	}
	if res.TotalCycles < gs.FallbackCycles+gs.WastedCycles {
		t.Errorf("TotalCycles %d omits the guard's costs (%d wasted + %d fallback)",
			res.TotalCycles, gs.WastedCycles, gs.FallbackCycles)
	}
}

func TestGuardNoRetriesConfigured(t *testing.T) {
	p, input := buildStorm(t, 4, 16, 4096)
	g := Guard{MinReports: 64, MaxRetries: -1}
	res, err := RunGuarded(context.Background(), p, input, cfgWithCapacity(100), g, Options{CollectReports: true})
	if err != nil {
		t.Fatal(err)
	}
	if gs := res.Guard; gs.Widened || !gs.FallbackBaseline || gs.Attempts != 1 {
		t.Fatalf("MaxRetries=-1 should fall back without widening, got %+v", gs)
	}
}

func TestGuardTransparentOnHealthyRun(t *testing.T) {
	// When no budget trips, the guarded result must be cycle-for-cycle
	// identical to the unguarded executor.
	net, err := regexc.CompileAll([]string{"abcde"}, regexc.Options{})
	if err != nil {
		t.Fatal(err)
	}
	input := []byte("ab abcde xx abcde")
	p := buildPartition(t, net, input[:2])
	plain, err := RunBaseAPSpAP(p, input, cfgWithCapacity(100), Options{CollectReports: true})
	if err != nil {
		t.Fatal(err)
	}
	guarded, err := RunGuarded(context.Background(), p, input, cfgWithCapacity(100), Guard{}, Options{CollectReports: true})
	if err != nil {
		t.Fatal(err)
	}
	if gs := guarded.Guard; gs == nil || gs.Trips != 0 || gs.Attempts != 1 || gs.BatchFallbacks != 0 {
		t.Fatalf("healthy run tripped the guard: %+v", guarded.Guard)
	}
	if guarded.TotalCycles != plain.TotalCycles || guarded.EnableStalls != plain.EnableStalls ||
		guarded.IntermediateReports != plain.IntermediateReports {
		t.Fatalf("guarded run diverges from unguarded: %d vs %d cycles", guarded.TotalCycles, plain.TotalCycles)
	}
	if !reportsEqual(plain.Reports, guarded.Reports) {
		t.Fatal("reports differ")
	}
}

func TestGuardPerBatchFallback(t *testing.T) {
	// Two cold states reporting at the same positions stall the enable
	// port. A near-zero stall budget (with the watchdog effectively off)
	// forces the per-batch pre-flight to run those NFAs un-split instead.
	net, err := regexc.CompileAll([]string{"ab", "a[bc]"}, regexc.Options{})
	if err != nil {
		t.Fatal(err)
	}
	input := []byte("aXab ab ac")
	p := buildPartition(t, net, []byte("XX"))
	g := Guard{ReportBudget: 100, StallBudget: 1e-9, MinReports: 1 << 40}
	res, err := RunGuarded(context.Background(), p, input, cfgWithCapacity(100), g, Options{CollectReports: true})
	if err != nil {
		t.Fatal(err)
	}
	gs := res.Guard
	if gs.BatchFallbacks == 0 || gs.Trips != 0 {
		t.Fatalf("expected a per-batch fallback without a watchdog trip, got %+v", gs)
	}
	if res.SpAPExecutions != 0 {
		t.Errorf("the stalling batch still ran in SpAP mode (%d executions)", res.SpAPExecutions)
	}
	baseline := sim.Run(net, input, sim.Options{CollectReports: true})
	if !reportsEqual(baseline.Reports, res.Reports) {
		t.Fatalf("per-batch fallback broke report equivalence:\nbaseline %v\nguarded %v",
			baseline.Reports, res.Reports)
	}
}

func TestRunGuardedCancellation(t *testing.T) {
	p, input := buildStorm(t, 4, 16, 1<<16)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := RunGuarded(ctx, p, input, cfgWithCapacity(100), Guard{}, Options{CollectReports: true})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res == nil || res.Guard == nil {
		t.Fatal("cancelled run must still return partial stats")
	}
	if res.BaseAPCycles != 0 {
		t.Errorf("pre-cancelled run streamed %d cycles", res.BaseAPCycles)
	}
}

func TestRunBaseAPSpAPContextCancelFromGoroutine(t *testing.T) {
	// Exercises the concurrent cancel path under -race. The run may finish
	// before the cancel lands; both outcomes must leave a valid result.
	net, err := regexc.CompileAll([]string{"abcde"}, regexc.Options{})
	if err != nil {
		t.Fatal(err)
	}
	input := make([]byte, 1<<20)
	copy(input, "ab abcde xx abcde")
	p := buildPartition(t, net, input[:2])
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(time.Millisecond)
		cancel()
	}()
	res, err := RunBaseAPSpAPContext(ctx, p, input, cfgWithCapacity(100), Options{})
	if err != nil && !errors.Is(err, context.Canceled) {
		t.Fatalf("unexpected error %v", err)
	}
	if res == nil || res.TotalCycles < 0 || res.NumReports < 0 {
		t.Fatalf("invalid partial result %+v", res)
	}
	cancel()
}

func TestConfigLoadFailureErrorsOut(t *testing.T) {
	net, err := regexc.CompileAll([]string{"abcde"}, regexc.Options{})
	if err != nil {
		t.Fatal(err)
	}
	input := []byte("ab abcde xx abcde")
	p := buildPartition(t, net, input[:2])
	inj := fault.New(fault.Plan{Seed: 1, LoadFailRate: 1})
	_, err = RunBaseAPSpAP(p, input, cfgWithCapacity(100), Options{Faults: inj})
	if !errors.Is(err, fault.ErrConfigLoad) {
		t.Fatalf("err = %v, want ErrConfigLoad", err)
	}
}

func TestReportDropFaultsAreCounted(t *testing.T) {
	net, err := regexc.CompileAll([]string{"abcde"}, regexc.Options{})
	if err != nil {
		t.Fatal(err)
	}
	input := []byte("ab abcde xx abcde")
	p := buildPartition(t, net, input[:2])
	inj := fault.New(fault.Plan{Seed: 1, ReportDropRate: 1})
	res, err := RunBaseAPSpAP(p, input, cfgWithCapacity(100), Options{CollectReports: true, Faults: inj})
	if err != nil {
		t.Fatal(err)
	}
	if res.Fault.DroppedReports == 0 {
		t.Fatal("expected dropped intermediate reports to be counted")
	}
	// With every queue entry lost, SpAP mode never learns of the deep
	// matches: the surviving reports are a strict subset of the baseline's.
	baseline := sim.Run(net, input, sim.Options{CollectReports: true})
	if len(res.Reports) >= len(baseline.Reports) {
		t.Fatalf("dropping all intermediate reports should lose matches: %d vs %d",
			len(res.Reports), len(baseline.Reports))
	}
}

func TestRunGuardedFeedsCalibrator(t *testing.T) {
	// A storm run must push misprediction evidence into an attached
	// calibrator: density well above target, bias moving positive.
	p, input := buildStorm(t, 4, 16, 4096)
	cal := &hotness.Calibrator{}
	g := Guard{MinReports: 64, HopelessFactor: 1000}
	if _, err := RunGuarded(context.Background(), p, input, cfgWithCapacity(100), g, Options{Calibrate: cal}); err != nil {
		t.Fatal(err)
	}
	if _, seen := cal.Density(); seen != 1 {
		t.Fatalf("calibrator saw %d observations, want 1", seen)
	}
	// The widened retry removes the intermediates, so the surviving
	// attempt's density is clean — the Widened escalation flag is what
	// must carry the "cut was too shallow" signal into the bias.
	if cal.Bias() <= 0 {
		t.Errorf("bias = %g, want > 0 after a widened storm run", cal.Bias())
	}

	// A healthy run with near-zero intermediates relaxes the bias.
	before := cal.Bias()
	m := automata.NewNFA()
	head := m.Add(symset.Single('a'), automata.StartAllInput, false)
	m.Connect(head, m.Add(symset.Single('b'), automata.StartNone, true))
	net := automata.NewNetwork(m)
	topo := graph.TopoOrder(net)
	hp, err := hotcold.Build(net, topo, []int32{topo.MaxPerNFA[0]}, hotcold.Options{})
	if err != nil {
		t.Fatal(err)
	}
	clean := make([]byte, 65536)
	if _, err := RunGuarded(context.Background(), hp, clean, cfgWithCapacity(100), Guard{}, Options{Calibrate: cal}); err != nil {
		t.Fatal(err)
	}
	if cal.Bias() >= before {
		t.Errorf("bias did not relax after a clean run: %g ≥ %g", cal.Bias(), before)
	}

	// No calibrator attached: the same call must not panic.
	if _, err := RunGuarded(context.Background(), hp, clean, cfgWithCapacity(100), Guard{}, Options{}); err != nil {
		t.Fatal(err)
	}
}
