// Static pre-flight for the guard: the certified worst-case analysis
// (internal/worstcase) applied to a partition before the first symbol is
// streamed. The runtime watchdog discovers a report storm by paying for
// it — a wasted BaseAP attempt per trip, then widened retries. The
// pre-flight decides the same ladder from the static bound instead:
//
//   - Safe: the worst-case number of SIMULTANEOUS intermediate reports
//     in any cycle is within the enable-port count, so no input — not
//     even an adversarial one — can ever stall an enable, and a
//     watchdog trip (which requires both the report and the stall
//     budget to be exceeded) is impossible. The guarded run skips the
//     watchdog entirely.
//   - Sized: some widening of the partition layers within the guard's
//     retry allowance brings the static bound under the port count; the
//     run starts at those layers and never pays the trip that would
//     have found them.
//   - Hopeless: no allowed widening fits AND an adversarial witness
//     input demonstrably sustains a stalling storm past the hopeless
//     threshold; the run goes straight to the baseline fallback,
//     spending zero cycles on attempts that certified analysis says an
//     adversary can always void.
//
// The pre-flight sizes for the certified worst case. On benign traffic
// that is pessimistic — a Hopeless app would have run fine in BaseAP
// mode — so it is opt-in (Guard.Preflight), for deployments that value
// tail-latency certainty over average-case SpAP wins; apserve's
// admission control makes the same trade.
package spap

import (
	"sparseap/internal/automata"
	"sparseap/internal/hotcold"
	"sparseap/internal/worstcase"
)

// Pre-flight analysis budgets: the bound is sound at any budget, and the
// witness only needs to clear the hopeless threshold, not be maximal.
const (
	preflightGramBudget = 32 << 20
	preflightWitnessLen = 1024
)

// Preflight is the static verdict on one partition under one guard
// configuration and port count.
type Preflight struct {
	// Density is the static upper bound on intermediate reports emitted
	// in any single cycle — simultaneity, the quantity that stalls
	// enable ports, and a fortiori a bound on reports/symbol.
	Density float64
	// WitnessDensity is the intermediate-report density (reports per
	// symbol) a synthesized adversarial input actually sustains, and
	// WitnessPeak its largest single-cycle burst (both 0 when the
	// witness stage was not needed). The frontier model is engine-exact,
	// so these are demonstrated lower bounds on the adversarial truth.
	WitnessDensity float64
	WitnessPeak    int
	// Safe reports Density ≤ the enable-port count: no input can stall,
	// so the watchdog cannot trip.
	Safe bool
	// K, when non-nil, holds widened partition layers whose static
	// bound fits the port count — the layer sizing the runtime ladder
	// would have found by tripping.
	K []int32
	// Hopeless reports that no allowed widening fits and the witness
	// sustains a stalling storm above HopelessFactor × ReportBudget.
	Hopeless bool
}

// interBound bounds the single-cycle intermediate-report burst of a
// partition's hot network: the worst-case per-cycle count of activations
// of the cut stand-in states (HotOrig == None).
func interBound(p *hotcold.Partition) int {
	if p.Hot.Len() == 0 {
		return 0
	}
	wc := worstcase.Analyze(p.Hot, worstcase.Config{GramBudget: preflightGramBudget})
	bound, _ := wc.ReportBoundFor(func(s automata.StateID) bool {
		return p.HotOrig[s] == automata.None
	})
	return bound
}

// PreflightPartition computes the static verdict for running p under g
// with the given number of enable ports. It never modifies p; a Sized
// verdict returns the recommended layers in K and the caller rebuilds.
func PreflightPartition(p *hotcold.Partition, g Guard, ports int) *Preflight {
	g = g.withDefaults()
	if ports <= 0 {
		ports = 1
	}
	pf := &Preflight{Density: float64(interBound(p))}
	if pf.Density <= float64(ports) {
		pf.Safe = true
		return pf
	}
	// Size the layers: walk the same widening ladder the runtime guard
	// would, but compare static bounds instead of paying for trips.
	cur := p
	for r := 0; r < g.MaxRetries; r++ {
		np, ok := widenPartition(cur, g.WidenFactor)
		if !ok {
			break
		}
		cur = np
		if interBound(cur) <= ports {
			pf.K = cur.K
			return pf
		}
	}
	// No allowed widening fits: ask the witness synthesizer whether an
	// input actually sustaining a hopeless-grade stalling storm exists,
	// or the bound is just loose.
	wc := worstcase.Analyze(p.Hot, worstcase.Config{GramBudget: preflightGramBudget})
	var targets []automata.StateID
	for s, o := range p.HotOrig {
		if o == automata.None {
			targets = append(targets, automata.StateID(s))
		}
	}
	w := wc.Synthesize(worstcase.WitnessOptions{
		Target: targets,
		MaxLen: preflightWitnessLen,
	})
	pf.WitnessPeak = w.PeakTarget
	if n := len(w.Input); n > 0 {
		pf.WitnessDensity = float64(w.TotalTarget) / float64(n)
	}
	pf.Hopeless = pf.WitnessPeak > ports &&
		pf.WitnessDensity > g.HopelessFactor*g.ReportBudget
	return pf
}
