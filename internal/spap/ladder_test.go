package spap

import (
	"sync"
	"testing"
)

func TestLadderDemotesAfterConsecutiveTrips(t *testing.T) {
	l := NewLadder(LadderConfig{TripLimit: 2, Cooldown: 3})
	if m := l.Next(); m != ModeGuarded {
		t.Fatalf("fresh ladder mode = %v", m)
	}
	l.ObserveGuarded(ModeGuarded, true)
	if m := l.Next(); m != ModeGuarded {
		t.Fatalf("after one trip mode = %v (limit is 2)", m)
	}
	l.ObserveGuarded(ModeGuarded, true)
	if m := l.Mode(); m != ModeBaseline {
		t.Fatalf("after second trip mode = %v, want baseline", m)
	}
	if _, demotions := l.Stats(); demotions != 1 {
		t.Fatalf("demotions = %d, want 1", demotions)
	}
}

func TestLadderTripStreakResetByCleanRun(t *testing.T) {
	l := NewLadder(LadderConfig{TripLimit: 2, Cooldown: 3})
	l.ObserveGuarded(ModeGuarded, true)
	l.ObserveGuarded(ModeGuarded, false) // clean run breaks the streak
	l.ObserveGuarded(ModeGuarded, true)
	if m := l.Mode(); m != ModeGuarded {
		t.Fatalf("non-consecutive trips demoted the tenant: %v", m)
	}
}

func TestLadderCooldownProbeAndPromotion(t *testing.T) {
	l := NewLadder(LadderConfig{TripLimit: 1, Cooldown: 2})
	l.ObserveGuarded(ModeGuarded, true) // demote immediately
	if m := l.Next(); m != ModeBaseline {
		t.Fatalf("first post-demotion request = %v", m)
	}
	if m := l.Next(); m != ModeBaseline {
		t.Fatalf("second post-demotion request = %v", m)
	}
	m := l.Next()
	if m != ModeProbe {
		t.Fatalf("after cooldown = %v, want probe", m)
	}
	// While the probe is in flight, others stay on baseline.
	if m2 := l.Next(); m2 != ModeBaseline {
		t.Fatalf("concurrent with probe = %v, want baseline", m2)
	}
	// Failed probe restarts the cooldown.
	l.ObserveGuarded(ModeProbe, true)
	if m2 := l.Next(); m2 != ModeBaseline {
		t.Fatalf("after failed probe = %v, want baseline", m2)
	}
	// Run the cooldown again; this time the probe is clean.
	l.Next()
	m = l.Next()
	if m != ModeProbe {
		t.Fatalf("second cooldown = %v, want probe", m)
	}
	l.ObserveGuarded(ModeProbe, false)
	if got := l.Mode(); got != ModeGuarded {
		t.Fatalf("after clean probe = %v, want guarded", got)
	}
}

func TestLadderConcurrent(t *testing.T) {
	l := NewLadder(LadderConfig{TripLimit: 2, Cooldown: 4})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				m := l.Next()
				l.ObserveGuarded(m, i%3 == 0)
			}
		}()
	}
	wg.Wait()
	// No invariant beyond "didn't race and lands in a real mode".
	if m := l.Mode(); m != ModeGuarded && m != ModeBaseline {
		t.Fatalf("mode = %v", m)
	}
}

func TestTrippedClassification(t *testing.T) {
	if Tripped(nil) || Tripped(&Result{}) {
		t.Fatal("nil/guardless results must not count as trips")
	}
	if Tripped(&Result{Guard: &GuardStats{}}) {
		t.Fatal("clean guard stats must not count as a trip")
	}
	for _, g := range []*GuardStats{
		{Trips: 1},
		{Widened: true},
		{FallbackBaseline: true},
		{BatchFallbacks: 2},
	} {
		if !Tripped(&Result{Guard: g}) {
			t.Fatalf("guard stats %+v must count as a trip", g)
		}
	}
}
