package sparseap_test

import (
	"testing"

	"sparseap"
	"sparseap/internal/ap"
	"sparseap/internal/dfa"
	"sparseap/internal/exp"
	"sparseap/internal/sim"
	"sparseap/internal/workloads"
)

// Ablation benches for the design choices DESIGN.md calls out: the value
// of profiling vs behaviour-blind partitioning, compile-time automata
// optimization, the excluded output-reporting overhead, DFA vs NFA
// execution, and chunk-parallel simulation.

func BenchmarkAblationPartitionStrategies(b *testing.B) {
	s := benchSuite()
	var profiled, fixed, oracle float64
	for i := 0; i < b.N; i++ {
		res, err := exp.Ablation(s)
		if err != nil {
			b.Fatal(err)
		}
		profiled, fixed, oracle = res.GeoProfiled, res.GeoFixed, res.GeoOracle
	}
	b.ReportMetric(profiled, "geoProfiled")
	b.ReportMetric(fixed, "geoFixedCut")
	b.ReportMetric(oracle, "geoOracle")
}

func BenchmarkAblationOptimize(b *testing.B) {
	app, err := workloads.Build("Snort", workloads.Config{InputLen: 8192, Divisor: 32, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	var before, after int
	for i := 0; i < b.N; i++ {
		opt, stats := sparseap.Optimize(app.Net)
		before, after = stats.Before, stats.After
		_ = opt
	}
	b.ReportMetric(float64(before), "statesBefore")
	b.ReportMetric(float64(after), "statesAfter")
}

// BenchmarkAblationOutputOverhead quantifies the report-output stalls the
// paper excludes from its evaluation (Section VI-B), over PEN's dense
// report stream.
func BenchmarkAblationOutputOverhead(b *testing.B) {
	app, err := workloads.Build("PEN", workloads.Config{InputLen: 16384, Divisor: 32, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	res := sim.Run(app.Net, app.Input, sim.Options{CollectReports: true})
	positions := make([]int64, len(res.Reports))
	for i, r := range res.Reports {
		positions[i] = r.Pos
	}
	model := ap.DefaultOutputModel()
	var overhead int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		overhead = model.Overhead(positions)
	}
	b.ReportMetric(float64(overhead), "outputStallCycles")
	b.ReportMetric(float64(len(positions)), "reports")
}

// BenchmarkDFAvsNFA compares determinized execution against the frontier
// simulator on the ExactMatch rule set (the DFA-friendliest workload).
func BenchmarkDFAvsNFA(b *testing.B) {
	app, err := workloads.Build("EM", workloads.Config{InputLen: 32768, Divisor: 32, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("NFA", func(b *testing.B) {
		b.SetBytes(int64(len(app.Input)))
		for i := 0; i < b.N; i++ {
			sim.Run(app.Net, app.Input, sim.Options{})
		}
	})
	b.Run("DFA", func(b *testing.B) {
		d := dfa.New(app.Net, dfa.Options{MaxStates: 1 << 20})
		if err := d.Run(app.Input, nil); err != nil {
			b.Skip("state explosion on this rule set:", err)
		}
		b.SetBytes(int64(len(app.Input)))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := d.Run(app.Input, nil); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(d.NumStates()), "dfaStates")
	})
}

// BenchmarkParallelSim measures chunk-parallel simulation scaling on an
// acyclic rule set.
func BenchmarkParallelSim(b *testing.B) {
	app, err := workloads.Build("EM", workloads.Config{InputLen: 65536, Divisor: 32, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(map[int]string{1: "w1", 2: "w2", 4: "w4", 8: "w8"}[workers], func(b *testing.B) {
			b.SetBytes(int64(len(app.Input)))
			for i := 0; i < b.N; i++ {
				if _, err := sparseap.MatchParallel(app.Net, app.Input,
					sparseap.ParallelOptions{Workers: workers}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
