package sparseap

// This file exposes the serving surface: the fault-tolerant multi-tenant
// streaming match service (internal/serve), its resilient client and
// load generator, and the per-tenant guard-escalation ladder that
// degrades storm-prone tenants from SpAP to baseline execution.

import (
	"context"

	"sparseap/internal/metrics"
	"sparseap/internal/replica"
	"sparseap/internal/serve"
	"sparseap/internal/spap"
)

type (
	// MatchServer is the long-lived multi-tenant streaming match service:
	// shared compiled images, admission control with explicit shedding,
	// checkpoint-backed exactly-once session resume, graceful drain, and
	// per-tenant degradation ladders.
	MatchServer = serve.Server
	// ServeConfig tunes a MatchServer (quotas, budgets, checkpoint store,
	// capture interval, guard ladder).
	ServeConfig = serve.Config
	// ServeClient is the session-protocol client with retry, backoff, and
	// transparent resume across server kills and restarts.
	ServeClient = serve.Client
	// StreamResult is one completed stream session's exactly-once report
	// stream.
	StreamResult = serve.StreamResult
	// LoadgenOptions configures RunServeLoadgen.
	LoadgenOptions = serve.LoadgenOptions
	// BenchServe is the serve benchmark record (latency percentiles,
	// shed/resume counts) written to BENCH_serve.json.
	BenchServe = serve.BenchServe
	// MetricsRegistry is the per-tenant counter registry the serve path
	// reports into; its WriteText renders Prometheus text exposition.
	MetricsRegistry = metrics.Registry
	// LadderConfig tunes the per-tenant guard-escalation ladder.
	LadderConfig = spap.LadderConfig
	// GuardLadder tracks one tenant's position on the degradation ladder
	// (guarded -> baseline -> probe -> guarded).
	GuardLadder = spap.Ladder
	// ReplicatedStore wraps a local checkpoint store and ships every
	// committed slot to follower nodes, extending the save-then-flush
	// delivery barrier across the cluster (internal/replica).
	ReplicatedStore = replica.Store
	// ReplicaOptions tunes a ReplicatedStore (followers, ack quorum,
	// timeouts, hysteresis).
	ReplicaOptions = replica.Options
)

// NewMatchServer builds a match server; make applications resident with
// AddApp, then Serve/ListenAndServe.
func NewMatchServer(cfg ServeConfig) *MatchServer { return serve.New(cfg) }

// NewReplicatedStore wraps a local checkpoint store with follower
// shipping; pass it as ServeConfig.Store to make sessions survive node
// loss.
func NewReplicatedStore(local SlotStore, o ReplicaOptions) *ReplicatedStore {
	return replica.New(local, o)
}

// NewMetricsRegistry builds an empty counter registry.
func NewMetricsRegistry() *MetricsRegistry { return metrics.NewRegistry() }

// NewGuardLadder builds a fresh per-tenant escalation ladder.
func NewGuardLadder(cfg LadderConfig) *GuardLadder { return spap.NewLadder(cfg) }

// RunServeLoadgen drives a running match server through verification,
// latency, and overload phases; every completed stream is checked
// bit-identical against an uninterrupted local run.
func RunServeLoadgen(ctx context.Context, o LoadgenOptions) (*BenchServe, error) {
	return serve.RunLoadgen(ctx, o)
}

// WriteBenchServe writes a serve benchmark record as indented JSON.
func WriteBenchServe(path string, b *BenchServe) error { return serve.WriteBenchServe(path, b) }
