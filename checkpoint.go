package sparseap

// This file exposes the checkpointed-execution surface: crash-consistent
// snapshot/restore of the execution engine, durable checkpoint stores with
// atomic write-rename persistence and corruption fallback, and resumable
// variants of the baseline and BaseAP/SpAP systems with exactly-once
// report delivery across resume boundaries.

import (
	"context"

	"sparseap/internal/ap"
	"sparseap/internal/checkpoint"
	"sparseap/internal/sim"
	"sparseap/internal/spap"
)

type (
	// CheckpointStore is a directory-backed durable store: every save is
	// write-tmp + fsync + rename with the previous checkpoint rotated to a
	// fallback slot, so a crash at any instant leaves a loadable state.
	CheckpointStore = checkpoint.DirStore
	// SlotStore is the store contract CheckpointStore implements; the
	// replicated store (NewReplicatedStore) satisfies it too, so every
	// checkpoint consumer accepts either.
	SlotStore = checkpoint.Store
	// CheckpointRunner bundles a store with one checkpoint stream and its
	// capture policy (interval, chaos hook). A nil store disables
	// persistence; executors need no nil-guards.
	CheckpointRunner = checkpoint.Runner
	// CheckpointManifest ties the checkpoint streams of a run together and
	// carries the resume count (the chaos epoch).
	CheckpointManifest = checkpoint.Manifest
	// EngineSnapshot is the serializable dynamic state of a simulation
	// engine between two Step calls.
	EngineSnapshot = sim.Snapshot
	// ResumeStats records checkpoint/resume bookkeeping of a run.
	ResumeStats = spap.ResumeStats
)

var (
	// ErrNoCheckpoint reports an empty store (fresh start).
	ErrNoCheckpoint = checkpoint.ErrNoCheckpoint
	// ErrCheckpointMismatch reports a checkpoint that belongs to a
	// different run, format version, or network.
	ErrCheckpointMismatch = checkpoint.ErrMismatch
	// ErrCrashInjected is the chaos hook's injected process kill.
	ErrCrashInjected = checkpoint.ErrCrashInjected
)

// OpenCheckpointStore opens (creating if needed) a checkpoint directory.
func OpenCheckpointStore(dir string) (*CheckpointStore, error) { return checkpoint.Open(dir) }

// RunBaselineCheckpointed is RunBaselineContext with durable checkpoints:
// engine state is captured every ck.Every symbols and the run resumes from
// the newest valid checkpoint. The returned report list is the full
// stream (restored prefix + re-run suffix), bit-identical to an
// uninterrupted run's.
func (e *Engine) RunBaselineCheckpointed(ctx context.Context, net *Network, input []byte, ck *CheckpointRunner) (*BaselineResult, []Report, error) {
	return ap.RunBaselineCheckpointedContext(ctx, net, input, e.AP, true, ck)
}

// RunBaseAPSpAPCheckpointed is RunBaseAPSpAPContext with durable
// checkpoints: per-batch progress (completed batch indices, the
// intermediate-report list, mid-batch engine snapshots and report
// cursors) persists through ck, so an interrupted run resumes mid-batch
// with exactly-once report delivery instead of re-streaming from symbol 0.
func (e *Engine) RunBaseAPSpAPCheckpointed(ctx context.Context, p *Partition, input []byte, ck *CheckpointRunner) (*ExecResult, error) {
	return spap.RunBaseAPSpAPCheckpointed(ctx, p, input, e.AP, e.execOpts(), ck)
}

// RunGuardedCheckpointed is RunGuarded with durable checkpoints: the
// guard ladder (attempts, widened layers, watchdog counters, fallbacks)
// is part of the persisted state, so even a run killed mid-retry or
// mid-fallback resumes exactly where it was.
func (e *Engine) RunGuardedCheckpointed(ctx context.Context, p *Partition, input []byte, g Guard, ck *CheckpointRunner) (*ExecResult, error) {
	return spap.RunGuardedCheckpointed(ctx, p, input, e.AP, g, e.execOpts(), ck)
}
