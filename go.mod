module sparseap

go 1.22
